"""Deterministic fault injection for the external sort's spill I/O.

Production sorters are judged by how they fail, not just by peak
throughput: a full disk, a truncated file, or a flipped bit must surface
as a *typed* error (or be masked by retry/failover) -- never as an opaque
numpy shape error three layers up.  This module provides the two pieces
that make those failure paths testable without monkeypatching ``os``:

* :class:`SpillIO` -- the real filesystem backend.  Every spill byte the
  external sort reads, writes, or removes goes through one of these, so
  swapping the instance swaps the (simulated) storage behaviour.
* :class:`FaultInjector` -- a :class:`SpillIO` that injects faults at
  deterministic, seed-driven points: ``ENOSPC`` on write, short writes,
  silent tail truncation, bit-flipped or short reads, slow I/O, and
  failing removals.  Faults are described declaratively with
  :class:`InjectedFault`; the injector counts operations and fires each
  fault at its configured index, so a test (or the randomized suite) can
  replay the exact same failure forever.

The injector never reaches into library internals: it only perturbs the
bytes and errnos the filesystem itself could produce.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultStats",
    "InjectedFault",
    "SlowStorageIO",
    "SpillIO",
]


class SpillIO:
    """Real filesystem backend for spill files.

    The external sort performs exactly three kinds of storage operation,
    all routed through this object: whole-file sequential writes, ranged
    reads, and removals.  Subclasses (the fault injector, or a future
    remote/async backend) override these three methods.
    """

    def write_file(self, path: str, sections: Sequence[bytes]) -> None:
        """Write ``sections`` contiguously to ``path`` (created/truncated)."""
        with open(path, "wb") as fh:
            for section in sections:
                fh.write(section)

    def read(self, path: str, offset: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` at ``offset``; may return short at EOF."""
        with open(path, "rb") as fh:
            fh.seek(offset)
            return fh.read(nbytes)

    def remove(self, path: str) -> None:
        os.remove(path)

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)


class SlowStorageIO(SpillIO):
    """Storage with a fixed, deterministic per-operation latency.

    Models cold spill storage (network disk, throttled cloud volume):
    every read pays ``read_delay_s`` before the bytes arrive, every
    write ``write_delay_s``.  The sleep releases the GIL, so -- exactly
    like real blocking I/O -- a prefetch thread paying the latency does
    not stall merge compute on another thread.  The overlap benchmark
    uses this to make the synchronous-vs-prefetched merge gap
    deterministic and visible even on a single-core container, where
    raw page-cache reads are too fast to overlap measurably.
    """

    def __init__(
        self, read_delay_s: float = 0.0005, write_delay_s: float = 0.0
    ) -> None:
        self.read_delay_s = read_delay_s
        self.write_delay_s = write_delay_s
        self.reads = 0
        self.writes = 0
        self._lock = threading.Lock()

    def read(self, path: str, offset: int, nbytes: int) -> bytes:
        with self._lock:
            self.reads += 1
        if self.read_delay_s:
            time.sleep(self.read_delay_s)
        return super().read(path, offset, nbytes)

    def write_file(self, path: str, sections: Sequence[bytes]) -> None:
        with self._lock:
            self.writes += 1
        if self.write_delay_s:
            time.sleep(self.write_delay_s)
        super().write_file(path, sections)


FAULT_KINDS = (
    "enospc",  # write raises OSError(ENOSPC) before any byte lands
    "short_write",  # write persists a prefix, then raises OSError(EIO)
    "truncate",  # write silently loses its tail (no error raised)
    "bitflip",  # read returns the data with one bit flipped
    "short_read",  # read returns fewer bytes than the file holds
    "slow_io",  # the operation succeeds after an injected delay
    "cleanup_error",  # remove raises OSError(EACCES)
)

_OP_OF_KIND = {
    "enospc": "write",
    "short_write": "write",
    "truncate": "write",
    "bitflip": "read",
    "short_read": "read",
    "slow_io": "any",
    "cleanup_error": "remove",
}


@dataclass
class InjectedFault:
    """One declaratively scheduled fault.

    The fault fires on the operations of its kind (reads for read
    faults, writes for write faults, ...) whose *matching-operation
    index* -- counted per fault, only over operations whose path contains
    ``path_substring`` when one is given -- falls in
    ``[at, at + times)``.  ``times=None`` makes the fault persistent:
    it fires on every matching operation from ``at`` onwards, which is
    how a permanently full disk or an unwritable directory is modelled.
    """

    kind: str
    at: int = 0
    times: int | None = 1
    path_substring: str | None = None
    delay_s: float = 0.002  # only used by "slow_io"
    _seen: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError("fault index `at` must be non-negative")

    @property
    def op(self) -> str:
        return _OP_OF_KIND[self.kind]

    def matches(self, op: str, path: str) -> bool:
        """Advance this fault's counter for ``op`` and report firing."""
        if self.op != op and self.op != "any":
            return False
        if self.path_substring is not None and (
            self.path_substring not in path
        ):
            return False
        seen = self._seen
        self._seen += 1
        if seen < self.at:
            return False
        if self.times is not None and seen >= self.at + self.times:
            return False
        return True


@dataclass
class FaultStats:
    """What the injector saw and did."""

    reads: int = 0
    writes: int = 0
    removes: int = 0
    fired: dict[str, int] = field(default_factory=dict)
    slow_seconds: float = 0.0

    def record_fired(self, kind: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1


class FaultInjector(SpillIO):
    """A :class:`SpillIO` that injects the faults it was armed with.

    Determinism: the *position* of each fault is fixed by its
    :class:`InjectedFault` indices, and the *content* perturbation (which
    bit flips, how many tail bytes vanish) is drawn from
    ``random.Random(seed)`` -- same seed, same corruption, forever.

    ``on_op(op, path, index)`` is called before every operation; tests
    use it to trigger out-of-band events (e.g. cancelling the operator
    mid-merge) at an exact, reproducible point.

    Thread safety: the merge's prefetch layer issues reads from worker
    threads, so operation counters, per-fault match state, and the
    corruption RNG are guarded by a lock (the injected sleeps and the
    real file I/O happen outside it).  With concurrent readers the
    *interleaving* of read indices across threads is scheduling-
    dependent, but each individual operation still observes a
    consistent counter and each fault fires exactly its configured
    number of times.
    """

    def __init__(
        self,
        faults: Iterable[InjectedFault] = (),
        seed: int = 0,
        on_op: Callable[[str, str, int], None] | None = None,
    ) -> None:
        self.faults = list(faults)
        self.stats = FaultStats()
        self.on_op = on_op
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Operation plumbing
    # ------------------------------------------------------------------ #

    def _begin(self, op: str, path: str, index: int) -> list[InjectedFault]:
        if self.on_op is not None:
            self.on_op(op, path, index)
        with self._lock:
            active = [f for f in self.faults if f.matches(op, path)]
            for fault in active:
                self.stats.record_fired(fault.kind)
        for fault in active:
            if fault.kind == "slow_io":
                time.sleep(fault.delay_s)  # outside the lock: slow, not serial
                with self._lock:
                    self.stats.slow_seconds += fault.delay_s
        return [f for f in active if f.kind != "slow_io"]

    def _chop(self, size: int, cap: int) -> int:
        """How many tail bytes a truncation/short op loses (>= 1)."""
        if size <= 1:
            return size
        with self._lock:
            return 1 + self._rng.randrange(min(cap, size - 1))

    # ------------------------------------------------------------------ #
    # SpillIO overrides
    # ------------------------------------------------------------------ #

    def write_file(self, path: str, sections: Sequence[bytes]) -> None:
        with self._lock:
            index = self.stats.writes
            self.stats.writes += 1
        active = self._begin("write", path, index)
        data = b"".join(sections)
        for fault in active:
            if fault.kind == "enospc":
                raise OSError(
                    errno.ENOSPC,
                    "No space left on device (injected)",
                    path,
                )
            if fault.kind == "short_write":
                super().write_file(path, [data[: max(1, len(data) // 2)]])
                raise OSError(errno.EIO, "short write (injected)", path)
            if fault.kind == "truncate":
                lost = self._chop(len(data), cap=64)
                super().write_file(path, [data[: len(data) - lost]])
                return  # silent: the caller believes the write succeeded
        super().write_file(path, [data])

    def read(self, path: str, offset: int, nbytes: int) -> bytes:
        with self._lock:
            index = self.stats.reads
            self.stats.reads += 1
        active = self._begin("read", path, index)
        raw = super().read(path, offset, nbytes)
        for fault in active:
            if fault.kind == "short_read" and raw:
                raw = raw[: len(raw) - self._chop(len(raw), cap=32)]
            elif fault.kind == "bitflip" and raw:
                flipped = bytearray(raw)
                with self._lock:
                    position = self._rng.randrange(len(flipped))
                    flipped[position] ^= 1 << self._rng.randrange(8)
                raw = bytes(flipped)
        return raw

    def remove(self, path: str) -> None:
        with self._lock:
            index = self.stats.removes
            self.stats.removes += 1
        active = self._begin("remove", path, index)
        for fault in active:
            if fault.kind == "cleanup_error":
                raise OSError(
                    errno.EACCES, "injected cleanup failure", path
                )
        super().remove(path)
