"""Top-N: the specialized operator that replaces a full sort for LIMIT.

The paper notes that ``ORDER BY ... LIMIT 1`` "will typically trigger a
specialized top N operator rather than the 'normal' sort operator" -- which
is exactly why its benchmark query adds OFFSET 1.  This module provides that
operator: a bounded max-heap keeps only the best ``limit + offset`` rows
seen so far, so memory is O(limit + offset) rather than O(n) and the cost
is O(n log(limit + offset)).

Heap entries compare on the normalized key bytes first (a memcmp, the fast
path); with VARCHAR keys the memcmp stops at the end of the first string
segment -- a byte difference past it is *not* decisive, because the
truncated strings may still differ where the prefix ended and a full
string outranks every later ORDER BY column.  Rows equal on the decisive
bytes fall back to an exact tuple comparison and finally to arrival
order, so results are exact even when VARCHAR values exceed the encoded
prefix.
"""

from __future__ import annotations

import functools
import heapq
from typing import Any

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.types.datatypes import TypeId
from repro.sort.operator import SortConfig, raise_if_cancelled
from repro.table.chunk import DataChunk, chunk_table
from repro.table.table import Table
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec, tuple_compare

__all__ = ["TopNOperator", "top_n"]


class _HeapEntry:
    """Max-heap adapter: heapq is a min-heap, so comparisons are inverted."""

    __slots__ = ("prefix", "key_values", "sequence", "row", "spec")

    def __init__(
        self,
        prefix: bytes,
        key_values: tuple[Any, ...],
        sequence: int,
        row: tuple[Any, ...],
        spec: SortSpec,
    ) -> None:
        self.prefix = prefix
        self.key_values = key_values
        self.sequence = sequence
        self.row = row
        self.spec = spec

    def sorts_before(self, other: "_HeapEntry") -> bool:
        """Exact 'comes earlier in sort order' test."""
        if self.prefix != other.prefix:
            return self.prefix < other.prefix
        cmp = tuple_compare(self.key_values, other.key_values, self.spec)
        if cmp != 0:
            return cmp < 0
        return self.sequence < other.sequence

    def __lt__(self, other: "_HeapEntry") -> bool:
        return other.sorts_before(self)  # inverted: heap root = worst kept


class TopNOperator:
    """Streaming ORDER BY ... LIMIT ... OFFSET with bounded memory."""

    def __init__(
        self,
        schema: Schema,
        spec: SortSpec,
        limit: int,
        offset: int = 0,
        config: SortConfig | None = None,
    ) -> None:
        if limit < 0 or offset < 0:
            raise SortError("limit and offset must be non-negative")
        self.schema = schema
        self.spec = spec
        self.limit = limit
        self.offset = offset
        self.config = config or SortConfig()
        self._capacity = limit + offset
        self._heap: list[_HeapEntry] = []
        self._seen = 0
        self._key_indices = [schema.index_of(n) for n in spec.column_names]
        # Bytes of the normalized key that are decisive on their own:
        # everything up to the end of the first VARCHAR segment (whose
        # truncated prefix may hide a difference that outranks every
        # later key byte), or the whole key when no string key exists.
        # None until the first chunk's layout pins the offsets.
        self._decisive: int | None = None
        self._has_string_key = any(
            schema.column(name).dtype.type_id is TypeId.VARCHAR
            for name in spec.column_names
        )

    def sink(self, chunk: DataChunk) -> None:
        """Offer one vector batch; keeps at most limit+offset best rows."""
        raise_if_cancelled(self.config)
        if len(chunk) == 0 or self._capacity == 0:
            self._seen += len(chunk)
            return
        table = chunk.to_table()
        # A fixed prefix keeps keys comparable across chunks.
        keys = normalize_keys(
            table,
            self.spec,
            string_prefix=MAX_STRING_PREFIX,
            include_row_id=False,
        )
        if self._decisive is None:
            self._decisive = keys.layout.key_width
            if self._has_string_key:
                for segment in keys.layout.segments:
                    if segment.dtype.type_id is TypeId.VARCHAR:
                        self._decisive = (
                            segment.offset + segment.total_width
                        )
                        break
        for i in range(len(table)):
            row = table.row(i)
            entry = _HeapEntry(
                keys.key_bytes(i)[: self._decisive],
                tuple(row[j] for j in self._key_indices),
                self._seen + i,
                row,
                self.spec,
            )
            if len(self._heap) < self._capacity:
                heapq.heappush(self._heap, entry)
            elif entry.sorts_before(self._heap[0]):
                heapq.heapreplace(self._heap, entry)
        self._seen += len(table)

    def finalize(self) -> Table:
        """The LIMIT rows after OFFSET, in sorted order."""
        raise_if_cancelled(self.config)
        ordered = sorted(
            self._heap,
            key=functools.cmp_to_key(
                lambda a, b: -1 if a.sorts_before(b) else 1
            ),
        )
        selected = ordered[self.offset : self.offset + self.limit]
        if not selected:
            return Table.empty(self.schema)
        data: dict[str, list[Any]] = {name: [] for name in self.schema.names}
        for entry in selected:
            for name, value in zip(self.schema.names, entry.row):
                data[name].append(value)
        dtypes = {c.name: c.dtype for c in self.schema}
        return Table.from_pydict(data, dtypes)


def top_n(
    table: Table, spec: SortSpec | str, limit: int, offset: int = 0
) -> Table:
    """One-shot top-N over a table."""
    if isinstance(spec, str):
        spec = SortSpec.of(*[part.strip() for part in spec.split(",")])
    operator = TopNOperator(table.schema, spec, limit, offset)
    for chunk in chunk_table(table):
        operator.sink(chunk)
    return operator.finalize()
