"""Real multi-core parallel sorting: morsel-driven runs + Merge Path.

The rest of the sort pipeline *models* parallelism (the virtual-time
scheduler in :mod:`repro.engine.parallel`); this module executes it.  A
:class:`ParallelSortExecutor` owns a process pool and runs the two
parallel phases of the paper's Section VII / Figure 11 pipeline on real
cores:

1. **Morsel-driven run generation** -- the normalized-key matrix is cut
   into fixed-size morsels; each worker sorts one morsel's key rows with
   the existing vector kernel (:func:`repro.sort.kernels.argsort_rows`)
   and writes the resulting index slice into a shared order buffer.
2. **Merge-Path-partitioned merge** -- sorted morsel runs are merged
   with a cascaded 2-way merge whose every pair is cut into independent
   equal-output sub-merges along Merge Path diagonals
   (:func:`repro.sort.merge_path.merge_path_partitions`); each sub-merge
   is one vectorized :func:`repro.sort.kernels.merge_indices` call in a
   worker, writing its slice of the output order directly.

Workers communicate exclusively through ``multiprocessing.shared_memory``
buffers: the key bytes are copied into one shared segment at setup and
the (ping-pong) order buffers are shared int64 arrays, so **no key or
row bytes are ever pickled** -- tasks are tuples of segment names and
integer ranges, results are timing scalars.  Payload rows never cross a
process boundary at all: the executor returns a gather permutation and
the caller reorders the payload in-process, which is why unpicklable
payload columns cannot break the parallel path (they never travel).

Determinism: every sub-sort is stable and every merge resolves ties to
the earlier (lower-row-id) side, exactly like the serial kernels, so the
permutation -- and therefore the sorted table -- is byte-identical to
the serial path for any worker count and morsel size.

Key compression (:mod:`repro.keys.compression`) composes transparently:
all shared-memory geometry (segment sizes, morsel offsets, sub-merge
bounds) derives from the ``key_width`` the caller passes alongside the
matrix, never from a schema-computed width, so compressed (narrower)
key matrices just make the shared segment smaller.

Fallback rules (the caller degrades to the serial kernels whenever
:meth:`ParallelSortExecutor.argsort` / :meth:`merge_two` return
``None``):

* ``num_workers <= 1`` or fewer than two morsels of input;
* the platform lacks POSIX shared memory or the ``fork`` start method
  (the executor never uses ``spawn``: it would re-import the world per
  worker and re-introduce pickling);
* shared-memory setup fails at runtime (e.g. ``/dev/shm`` is full) --
  the executor marks itself unavailable and all later calls fall back.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import SortError
from repro.sort.kernels import argsort_rows, merge_indices
from repro.sort.merge_path import merge_path_partitions

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "SHM_PREFIX",
    "ParallelSortExecutor",
    "parallel_platform_supported",
]

DEFAULT_MORSEL_ROWS = 1 << 15
"""Rows per run-generation morsel when the config does not override it."""

MIN_PARALLEL_MERGE_ROWS = 1 << 14
"""Below this many total rows a 2-way merge is not worth dispatching."""

SHM_PREFIX = "repro-sort-"
"""Name prefix of every shared-memory segment the executor creates."""


def parallel_platform_supported() -> bool:
    """True when this platform can run the shared-memory process pool."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #

_ATTACH_CACHE: dict[str, object] = {}
"""Per-worker cache of attached segments, keyed by segment name."""

_ATTACH_CACHE_LIMIT = 32


def _attach(name: str):
    """Attach a shared-memory segment by name, caching the mapping.

    Segment names are unique per executor call (pid + random token), so a
    cache hit can never alias a different segment.  The cache is bounded;
    overflow closes the cached mappings and starts over (the parent holds
    the segments open, so closing here never destroys data; a mapping
    with a still-exported buffer is simply dropped).
    """
    from multiprocessing import shared_memory

    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        return cached
    if len(_ATTACH_CACHE) >= _ATTACH_CACHE_LIMIT:
        for shm in _ATTACH_CACHE.values():
            try:
                shm.close()
            except BufferError:
                pass
        _ATTACH_CACHE.clear()
    shm = shared_memory.SharedMemory(name=name)
    _ATTACH_CACHE[name] = shm
    return shm


def _worker_slot() -> int:
    """Stable 1-based index of this pool worker (0 in the parent)."""
    identity = multiprocessing.current_process()._identity
    return identity[0] if identity else 0


def _keys_view(name: str, n: int, width: int) -> np.ndarray:
    shm = _attach(name)
    return np.ndarray((n, width), dtype=np.uint8, buffer=shm.buf)


def _order_view(name: str, n: int) -> np.ndarray:
    shm = _attach(name)
    return np.ndarray((n,), dtype=np.int64, buffer=shm.buf)


def _sort_morsel_task(task) -> tuple[int, float, int]:
    """Sort one morsel's key rows; write global indices into the order buffer.

    ``task`` is ``(keys_name, n, width, order_name, start, stop)``.  The
    written slice is disjoint per task, so no synchronization is needed.
    Returns ``(worker_slot, seconds, rows)``.
    """
    keys_name, n, width, order_name, start, stop = task
    began = time.perf_counter()
    keys = _keys_view(keys_name, n, width)
    order = _order_view(order_name, n)
    order[start:stop] = start + argsort_rows(keys[start:stop])
    return _worker_slot(), time.perf_counter() - began, stop - start


def _merge_slice_task(task) -> tuple[int, float, int]:
    """Merge one Merge-Path partition of a 2-way merge into the output.

    ``task`` is ``(keys_name, n, width, src_name, dst_name, a_lo, a_hi,
    b_lo, b_hi, out_lo)``.  With ``src_name`` set, the half-open ranges
    index the *source order buffer* (run rows are ``keys[src[i]]``);
    without it they index the key matrix directly and the written values
    are positions in the matrix.  Ties take the ``a`` side first -- the
    same rule :func:`merge_path_partitions` cut the diagonals with, so
    concatenating every partition's output is the stable full merge.
    Returns ``(worker_slot, seconds, rows)``.
    """
    keys_name, n, width, src_name, dst_name, a_lo, a_hi, b_lo, b_hi, out_lo = task
    began = time.perf_counter()
    keys = _keys_view(keys_name, n, width)
    dst = _order_view(dst_name, n)
    if src_name is None:
        idx_a = np.arange(a_lo, a_hi, dtype=np.int64)
        idx_b = np.arange(b_lo, b_hi, dtype=np.int64)
        keys_a = keys[a_lo:a_hi]
        keys_b = keys[b_lo:b_hi]
    else:
        src = _order_view(src_name, n)
        idx_a = src[a_lo:a_hi]
        idx_b = src[b_lo:b_hi]
        keys_a = keys[idx_a]
        keys_b = keys[idx_b]
    total = len(idx_a) + len(idx_b)
    if len(idx_a) == 0:
        dst[out_lo : out_lo + total] = idx_b
    elif len(idx_b) == 0:
        dst[out_lo : out_lo + total] = idx_a
    else:
        perm = merge_indices(keys_a, keys_b)
        dst[out_lo : out_lo + total] = np.concatenate([idx_a, idx_b])[perm]
    return _worker_slot(), time.perf_counter() - began, total


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #


class _KeyRows:
    """Sequence view of sorted key rows for Merge-Path binary searches.

    Each item is the row's key bytes (memcmp order under ``<``).  With an
    ``order`` array the view follows the indirection of a sorted run held
    as indices; only O(log n) items are ever materialized per partition
    search, so the per-item ``tobytes`` cost is negligible.
    """

    __slots__ = ("_keys", "_order", "_lo", "_hi")

    def __init__(
        self,
        keys: np.ndarray,
        lo: int,
        hi: int,
        order: np.ndarray | None = None,
    ) -> None:
        self._keys = keys
        self._order = order
        self._lo = lo
        self._hi = hi

    def __len__(self) -> int:
        return self._hi - self._lo

    def __getitem__(self, index: int) -> bytes:
        position = self._lo + index
        if self._order is not None:
            position = int(self._order[position])
        return self._keys[position].tobytes()


@dataclass
class ParallelPhase:
    """Measured schedule of one parallel phase (one barrier).

    ``task_rows`` / ``task_seconds`` are per submitted task, in
    submission order; ``worker_seconds`` accumulates busy time per pool
    worker slot; ``makespan_s`` is the parent-observed wall-clock of the
    phase (dispatch to barrier).
    """

    name: str
    task_rows: list[int] = field(default_factory=list)
    task_seconds: list[float] = field(default_factory=list)
    worker_seconds: dict[int, float] = field(default_factory=dict)
    makespan_s: float = 0.0


class ParallelSortExecutor:
    """Process-pool executor of the morsel + Merge-Path sort phases.

    One executor serves many calls (the pool is created lazily on first
    use and reused); ``close()`` -- or use as a context manager --
    releases the workers.  All entry points return ``None`` when the
    parallel path cannot run, in which case the caller must fall back to
    the serial kernels; any shared-memory setup failure marks the
    executor unavailable for the rest of its life.
    """

    def __init__(
        self,
        num_workers: int,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        cancel_check=None,
    ) -> None:
        if num_workers < 1:
            raise SortError("num_workers must be at least 1")
        if morsel_rows < 1:
            raise SortError("morsel_rows must be at least 1")
        self.num_workers = num_workers
        self.morsel_rows = morsel_rows
        self.cancel_check = cancel_check
        self._pool = None
        self._unavailable = not parallel_platform_supported()
        self._segments: list = []
        self.phases: list[ParallelPhase] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "ParallelSortExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def available(self) -> bool:
        return self.num_workers > 1 and not self._unavailable

    def close(self) -> None:
        """Release the worker pool and any leaked segments; idempotent."""
        self._release_segments()
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.num_workers)
        return self._pool

    # ------------------------------------------------------------------ #
    # Shared-memory plumbing
    # ------------------------------------------------------------------ #

    def _create_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        name = (
            f"{SHM_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"
            f"-{len(self._segments)}"
        )
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes), name=name
        )
        self._segments.append(segment)
        return segment

    def _release_segments(self) -> None:
        """Close and unlink every live segment; never raises.

        Callers must drop their numpy views over the segment buffers
        first -- a still-exported buffer makes ``close()`` raise
        ``BufferError``, in which case the mapping is left to die with
        its last view but the name is still unlinked.
        """
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except (BufferError, OSError):
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass

    def _shared_keys(self, matrix: np.ndarray, key_width: int):
        """Copy the merge-relevant key prefix into a shared segment."""
        n = len(matrix)
        segment = self._create_segment(n * key_width)
        view = np.ndarray((n, key_width), dtype=np.uint8, buffer=segment.buf)
        view[:] = matrix[:, :key_width]
        return segment, view

    def _shared_order(self, n: int):
        segment = self._create_segment(n * 8)
        view = np.ndarray((n,), dtype=np.int64, buffer=segment.buf)
        return segment, view

    # ------------------------------------------------------------------ #
    # Phase dispatch
    # ------------------------------------------------------------------ #

    def _run_phase(self, name: str, worker, tasks: list, rows: list[int]):
        """map() one batch of tasks over the pool, recording its schedule.

        ``cancel_check`` runs before every dispatch: a cancelled sort
        stops between phases (never mid-map), so the caller's ``finally``
        still releases the shared segments and the pool stays reusable.
        """
        if self.cancel_check is not None:
            self.cancel_check()
        phase = ParallelPhase(name)
        phase.task_rows = list(rows)
        began = time.perf_counter()
        results = self._ensure_pool().map(worker, tasks)
        phase.makespan_s = time.perf_counter() - began
        for slot, seconds, _ in results:
            phase.task_seconds.append(seconds)
            phase.worker_seconds[slot] = (
                phase.worker_seconds.get(slot, 0.0) + seconds
            )
        self.phases.append(phase)
        return phase

    def _record(self, stats, phases: Sequence[ParallelPhase]) -> None:
        if stats is None:
            return
        stats.parallel_workers = self.num_workers
        for phase in phases:
            stats.parallel_task_rows.setdefault(phase.name, []).extend(
                phase.task_rows
            )
            stats.parallel_task_seconds.setdefault(phase.name, []).extend(
                phase.task_seconds
            )
            for slot, seconds in phase.worker_seconds.items():
                stats.parallel_worker_seconds[slot] = (
                    stats.parallel_worker_seconds.get(slot, 0.0) + seconds
                )
            stats.parallel_makespan_s += phase.makespan_s

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def argsort(
        self,
        matrix: np.ndarray,
        key_width: int,
        stats=None,
    ) -> np.ndarray | None:
        """Parallel stable argsort of key rows; ``None`` means fall back.

        Byte-for-byte equivalent to ``argsort_rows(matrix[:, :key_width])``:
        morsels are sorted stably and every cascade merge resolves ties to
        the earlier morsel, so the permutation equals the serial stable
        sort's.  Only the leading ``key_width`` bytes of each row are
        shipped to (and compared by) the workers.
        """
        n = len(matrix)
        morsels = [
            (start, min(start + self.morsel_rows, n))
            for start in range(0, n, self.morsel_rows)
        ]
        if not self.available or len(morsels) < 2:
            return None
        try:
            keys_segment, keys = self._shared_keys(matrix, key_width)
            src_segment, src = self._shared_order(n)
            dst_segment, dst = self._shared_order(n)
        except (OSError, ValueError):
            self._release_segments()
            self._unavailable = True
            return None
        phases: list[ParallelPhase] = []
        try:
            tasks = [
                (keys_segment.name, n, key_width, src_segment.name, start, stop)
                for start, stop in morsels
            ]
            phases.append(
                self._run_phase(
                    "run_gen",
                    _sort_morsel_task,
                    tasks,
                    [stop - start for start, stop in morsels],
                )
            )
            runs = morsels
            round_index = 0
            while len(runs) > 1:
                runs = self._merge_round(
                    round_index,
                    runs,
                    keys_segment.name,
                    keys,
                    src_segment.name,
                    src,
                    dst_segment.name,
                    dst,
                    phases,
                )
                src_segment, dst_segment = dst_segment, src_segment
                src, dst = dst, src
                round_index += 1
            result = src.copy()
        finally:
            # Drop the views before releasing: a buffer with live numpy
            # exports cannot be closed.
            keys = src = dst = None
            self._release_segments()
        self._record(stats, phases)
        return result

    def _merge_round(
        self,
        round_index: int,
        runs: list[tuple[int, int]],
        keys_name: str,
        keys: np.ndarray,
        src_name: str,
        src: np.ndarray,
        dst_name: str,
        dst: np.ndarray,
        phases: list[ParallelPhase],
    ) -> list[tuple[int, int]]:
        """One cascade round: merge adjacent run pairs along Merge Path.

        Every pair is split into ``ceil(num_workers / num_pairs)``
        equal-output partitions so the round keeps all workers busy even
        when few pairs remain -- the repartitioning that stops the final
        merges from degrading to a single thread.
        """
        n = len(src)
        pairs = [
            (runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)
        ]
        parts = max(1, -(-self.num_workers // len(pairs)))
        tasks = []
        rows = []
        next_runs: list[tuple[int, int]] = []
        for (a_start, a_stop), (b_start, b_stop) in pairs:
            a_view = _KeyRows(keys, a_start, a_stop, src)
            b_view = _KeyRows(keys, b_start, b_stop, src)
            points = merge_path_partitions(a_view, b_view, parts)
            for (i0, j0), (i1, j1) in zip(points, points[1:]):
                size = (i1 - i0) + (j1 - j0)
                if size == 0:
                    continue
                tasks.append(
                    (
                        keys_name,
                        n,
                        keys.shape[1],
                        src_name,
                        dst_name,
                        a_start + i0,
                        a_start + i1,
                        b_start + j0,
                        b_start + j1,
                        a_start + i0 + j0,
                    )
                )
                rows.append(size)
            next_runs.append((a_start, b_stop))
        if len(runs) % 2 == 1:
            start, stop = runs[-1]
            dst[start:stop] = src[start:stop]
            next_runs.append((start, stop))
        phases.append(
            self._run_phase(
                f"merge_round_{round_index}", _merge_slice_task, tasks, rows
            )
        )
        return next_runs

    def merge_two(
        self,
        left: np.ndarray,
        right: np.ndarray,
        key_width: int,
        stats=None,
    ) -> np.ndarray | None:
        """Parallel Merge-Path merge of two sorted key matrices.

        Same contract as :func:`repro.sort.kernels.merge_indices`: returns
        the gather permutation over ``concatenate([left, right])``, ties
        stable toward ``left``.  ``None`` means fall back to the serial
        kernel (too small, single worker, or platform unavailable).
        """
        n, m = len(left), len(right)
        total = n + m
        if (
            not self.available
            or n == 0
            or m == 0
            or total < max(MIN_PARALLEL_MERGE_ROWS, 2 * self.num_workers)
        ):
            return None
        try:
            keys_segment = self._create_segment(total * key_width)
            keys = np.ndarray(
                (total, key_width), dtype=np.uint8, buffer=keys_segment.buf
            )
            keys[:n] = left[:, :key_width]
            keys[n:] = right[:, :key_width]
            dst_segment, dst = self._shared_order(total)
        except (OSError, ValueError):
            self._release_segments()
            self._unavailable = True
            return None
        try:
            points = merge_path_partitions(
                _KeyRows(keys, 0, n), _KeyRows(keys, n, total), self.num_workers
            )
            tasks = []
            rows = []
            for (i0, j0), (i1, j1) in zip(points, points[1:]):
                size = (i1 - i0) + (j1 - j0)
                if size == 0:
                    continue
                tasks.append(
                    (
                        keys_segment.name,
                        total,
                        key_width,
                        None,
                        dst_segment.name,
                        i0,
                        i1,
                        n + j0,
                        n + j1,
                        i0 + j0,
                    )
                )
                rows.append(size)
            phase = self._run_phase("merge_two", _merge_slice_task, tasks, rows)
            result = dst.copy()
        finally:
            keys = dst = None
            self._release_segments()
        self._record(stats, [phase])
        return result
