"""Merge Path: partitioning a 2-way merge for parallel execution.

Merge Path (Green, Odeh & Birk 2014) views merging sorted runs A and B as a
monotone path through an |A| x |B| grid.  Cutting the path at equally spaced
*diagonals* yields independent sub-merges of equal total size, so k threads
can merge two runs with perfect load balance -- this is how DuckDB keeps the
final merges of its cascaded merge sort parallel (paper, Section VII).

The partition point on diagonal ``d`` is found with a binary search for the
"intersection" of the runs: the split (i, j), i + j = d, such that every
element taken from A is <= every remaining element of B and vice versa.

Two consumers share these partitions: the virtual-time scheduler in
:mod:`repro.engine.parallel` (modelled parallelism) and the real
multi-core executor in :mod:`repro.sort.parallel_exec`, which hands each
partition's sub-merge to a worker process over shared memory.  Both rely
on the same stability convention encoded in the binary search below:
ties are taken from ``a`` first, so partitioned sub-merges concatenate
into exactly the stable full merge.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import SortError

__all__ = [
    "merge_path_partition",
    "merge_path_partitions",
    "merge_partitioned",
]

Less = Callable[[Any, Any], bool]


def _default_less(a: Any, b: Any) -> bool:
    return a < b


def merge_path_partition(
    a: Sequence[Any],
    b: Sequence[Any],
    diagonal: int,
    less: Less | None = None,
) -> tuple[int, int]:
    """Split point (i, j) of the merge of ``a`` and ``b`` on ``diagonal``.

    Returns i and j with ``i + j == diagonal`` such that merging
    ``a[:i]`` with ``b[:j]`` yields the first ``diagonal`` outputs of the
    full (stable, a-first-on-ties) merge.  O(log min(d, |a|, |b|))
    comparisons.
    """
    less = less or _default_less
    if diagonal < 0 or diagonal > len(a) + len(b):
        raise SortError(
            f"diagonal {diagonal} out of range for |a|={len(a)}, |b|={len(b)}"
        )
    # Binary search over how many elements come from `a`.
    low = max(0, diagonal - len(b))
    high = min(diagonal, len(a))
    while low < high:
        i = (low + high) // 2
        j = diagonal - i
        # The stable merge takes a[i] before b[j-1] iff a[i] <= ... :
        # path is too low if b[j-1] should come after a[i].
        if less(b[j - 1], a[i]):
            high = i
        else:
            low = i + 1
    i = low
    return i, diagonal - i


def merge_path_partitions(
    a: Sequence[Any],
    b: Sequence[Any],
    num_partitions: int,
    less: Less | None = None,
) -> list[tuple[int, int]]:
    """Split points for ``num_partitions`` equal slices of the merge.

    Returns ``num_partitions + 1`` (i, j) pairs; slice ``p`` merges
    ``a[i_p:i_{p+1}]`` with ``b[j_p:j_{p+1}]``.  Each slice outputs
    ``ceil((|a|+|b|) / num_partitions)`` elements (the last may be short).
    """
    if num_partitions <= 0:
        raise SortError(f"num_partitions must be positive, got {num_partitions}")
    total = len(a) + len(b)
    step = -(-total // num_partitions) if total else 0
    points = []
    for p in range(num_partitions + 1):
        diagonal = min(p * step, total)
        points.append(merge_path_partition(a, b, diagonal, less))
    return points


def merge_partitioned(
    a: Sequence[Any],
    b: Sequence[Any],
    num_partitions: int,
    less: Less | None = None,
) -> list[Any]:
    """Full stable merge computed slice-by-slice via Merge Path.

    Serially executes what the parallel merge would run on each thread; the
    virtual-time scheduler in :mod:`repro.engine.parallel` uses the same
    partitioning to model the parallel makespan.
    """
    less = less or _default_less
    points = merge_path_partitions(a, b, num_partitions, less)
    out: list[Any] = []
    for (i0, j0), (i1, j1) in zip(points, points[1:]):
        i, j = i0, j0
        while i < i1 and j < j1:
            if less(b[j], a[i]):
                out.append(b[j])
                j += 1
            else:
                out.append(a[i])
                i += 1
        out.extend(a[i:i1])
        out.extend(b[j:j1])
    return out
