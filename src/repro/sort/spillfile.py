"""The checksummed on-disk format of external-sort spill files.

A spill file holds one sorted run as three contiguous data sections
(sorted key matrix, payload row matrix, string heap) preceded by a
versioned header::

    +--------------------------------------------------------------+
    | fixed header (48 bytes, little-endian)                       |
    |   magic "RSPL" | version | header_bytes | num_rows           |
    |   key_width | row_width | heap_bytes | page_size             |
    |   crc_count | header_crc32                                   |
    +--------------------------------------------------------------+
    | page CRC32 table: crc_count x u32                            |
    |   (keys pages, then rows pages, then heap pages)             |
    +--------------------------------------------------------------+
    | extra: header_bytes - 48 - 4*crc_count opaque bytes          |
    |   v2: the serialized compressed key layout, raw              |
    |   v3: tagged frames  (tag u8 | length u32 | payload)*        |
    |       tag 1 = serialized key layout                          |
    |       tag 2 = offset-value codes (u16 per key row)           |
    +--------------------------------------------------------------+
    | keys  section: num_rows x key_width bytes                    |
    | rows  section: num_rows x row_width bytes                    |
    | heap  section: heap_bytes bytes                              |
    +--------------------------------------------------------------+

Format version 2 adds the variable-length ``extra`` blob between the CRC
table and the data sections; readers locate it purely from
``header_bytes`` (which version-1 files pin at ``48 + 4*crc_count``, i.e.
an empty blob), so all versions parse with one code path.  Version 3
structures the blob as self-describing tagged frames
(:func:`pack_extra` / :func:`unpack_extra`) so independent metadata --
the key layout, the run's offset-value codes -- can coexist; unknown
tags are skipped, making future additions backward-readable.  A v2 blob
is interpreted as a single layout frame, so v2 files stay readable.

Integrity is page-granular *within* each section: section bytes are
covered by CRC32 checksums over ``page_size``-byte pages (the last page
of a section may be short), so a block read verifies exactly the pages it
touches -- no whole-file scan, and the merge's working set stays bounded.
``header_crc32`` covers the fixed header (with the CRC field zeroed) plus
the page table, so a damaged header is detected before any geometry
derived from it is trusted.

Every mismatch raises :class:`repro.errors.SpillCorruptionError` naming
the file, instead of surfacing later as a numpy shape/decode error.
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass

from repro.errors import SpillCorruptionError

__all__ = [
    "EXTRA_TAG_LAYOUT",
    "EXTRA_TAG_OVC",
    "FORMAT_VERSION",
    "MAGIC",
    "SECTION_NAMES",
    "SPILL_PAGE_SIZE",
    "SpillHeader",
    "VerifiedTailCache",
    "build_header",
    "pack_extra",
    "read_header",
    "unpack_extra",
]

MAGIC = b"RSPL"
FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)

EXTRA_TAG_LAYOUT = 1
"""Extra frame holding the serialized compressed key layout."""
EXTRA_TAG_OVC = 2
"""Extra frame holding the run's offset-value codes (little-endian u16
per key row; see :func:`repro.sort.kernels.ovc_codes`)."""

_FRAME = struct.Struct("<BI")
SPILL_PAGE_SIZE = 1 << 12
"""Default CRC page size (4 KiB).

Verified reads widen to page boundaries, so the page size bounds the
extra bytes a small read drags in (at most one page on either side).
4 KiB keeps that widening negligible even for the merge's narrow
payload-row gathers while the per-page ``zlib.crc32`` calls stay cheap;
the acceptance bar is the <10% end-to-end overhead asserted by
``benchmarks/bench_fault_overhead.py``.
"""

SECTION_NAMES = ("keys", "rows", "heap")

_FIXED = struct.Struct("<4sIIQIIQIII")
"""magic, version, header_bytes, num_rows, key_width, row_width,
heap_bytes, page_size, crc_count, header_crc32."""


class VerifiedTailCache:
    """The last CRC-verified page of each spill section, bytes included.

    Verified reads widen to page boundaries, so two consecutive block
    reads whose boundary straddles a page used to re-read *and*
    re-verify the shared page -- once as the first read's tail, once as
    the second read's head.  This cache keeps the bytes of the last page
    each section read (one page per section, 12 KiB total at the default
    page size): a follow-up read that starts inside the cached page is
    served the overlap from memory and only reads/verifies from the next
    page boundary on.  Because the cached bytes were themselves
    CRC-verified when first read, integrity guarantees are unchanged --
    nothing is ever trusted unverified, it is simply not re-fetched.

    Access is guarded by a lock: the prefetch layer
    (:mod:`repro.sort.prefetch`) reads key blocks from worker threads
    while the merge gathers payload rows on the consumer thread.  On a
    racing update the cache may simply miss -- correctness never depends
    on a hit.
    """

    __slots__ = ("_pages", "_lock")

    def __init__(self) -> None:
        self._pages: dict[int, tuple[int, bytes]] = {}
        self._lock = threading.Lock()

    def get(self, section: int, page_index: int) -> bytes | None:
        """The cached bytes of ``page_index``, or ``None`` on a miss."""
        with self._lock:
            entry = self._pages.get(section)
        if entry is not None and entry[0] == page_index:
            return entry[1]
        return None

    def put(self, section: int, page_index: int, data: bytes) -> None:
        """Remember ``data`` as the verified bytes of ``page_index``."""
        with self._lock:
            self._pages[section] = (page_index, data)


def _page_count(nbytes: int, page_size: int) -> int:
    return -(-nbytes // page_size) if nbytes else 0


def _page_crcs(data: bytes | memoryview, page_size: int) -> tuple[int, ...]:
    view = memoryview(data)
    return tuple(
        zlib.crc32(view[start : start + page_size])
        for start in range(0, len(view), page_size)
    )


@dataclass(frozen=True)
class SpillHeader:
    """Parsed (or freshly built) spill-file header.

    ``page_crcs`` holds one CRC tuple per section, in
    :data:`SECTION_NAMES` order.  All byte offsets below are absolute
    file offsets.  ``extra`` is the opaque metadata blob (empty for v1
    files); its interpretation depends on ``version`` -- see
    :func:`unpack_extra` -- and it is covered by ``header_crc32``.
    """

    num_rows: int
    key_width: int
    row_width: int
    heap_bytes: int
    page_size: int
    page_crcs: tuple[tuple[int, ...], ...]
    extra: bytes = b""
    version: int = FORMAT_VERSION

    @property
    def crc_count(self) -> int:
        return sum(len(crcs) for crcs in self.page_crcs)

    @property
    def header_bytes(self) -> int:
        return _FIXED.size + 4 * self.crc_count + len(self.extra)

    def section_length(self, section: int) -> int:
        return (
            self.num_rows * self.key_width,
            self.num_rows * self.row_width,
            self.heap_bytes,
        )[section]

    def section_offset(self, section: int) -> int:
        offset = self.header_bytes
        for index in range(section):
            offset += self.section_length(index)
        return offset

    @property
    def file_bytes(self) -> int:
        return self.section_offset(len(SECTION_NAMES) - 1) + self.heap_bytes

    def pack(self) -> bytes:
        """Serialize header + page table, computing ``header_crc32``."""
        table = struct.pack(
            f"<{self.crc_count}I",
            *(crc for crcs in self.page_crcs for crc in crcs),
        )
        fixed_fields = (
            MAGIC,
            self.version,
            self.header_bytes,
            self.num_rows,
            self.key_width,
            self.row_width,
            self.heap_bytes,
            self.page_size,
            self.crc_count,
        )
        tail = table + self.extra
        crc = zlib.crc32(tail, zlib.crc32(_FIXED.pack(*fixed_fields, 0)))
        return _FIXED.pack(*fixed_fields, crc) + tail


def build_header(
    num_rows: int,
    key_width: int,
    row_width: int,
    sections: tuple[bytes | memoryview, bytes | memoryview, bytes],
    page_size: int = SPILL_PAGE_SIZE,
    extra: bytes = b"",
) -> SpillHeader:
    """Header for a run about to be written, CRCs computed per page.

    ``extra`` is an opaque blob stored (and CRC-protected) in the header;
    the external sort puts the serialized compressed key layout there.
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return SpillHeader(
        num_rows=num_rows,
        key_width=key_width,
        row_width=row_width,
        heap_bytes=len(sections[2]),
        page_size=page_size,
        page_crcs=tuple(
            _page_crcs(section, page_size) for section in sections
        ),
        extra=bytes(extra),
    )


def read_header(io, path: str) -> SpillHeader:
    """Read and validate the header of the spill file at ``path``.

    ``io`` is a :class:`repro.sort.faults.SpillIO`.  Raises
    :class:`SpillCorruptionError` on a bad magic, unsupported version,
    truncated header, or header-CRC mismatch.
    """
    fixed = io.read(path, 0, _FIXED.size)
    if len(fixed) != _FIXED.size:
        raise SpillCorruptionError(
            f"truncated spill header ({len(fixed)} of {_FIXED.size} bytes)",
            path,
        )
    (
        magic,
        version,
        header_bytes,
        num_rows,
        key_width,
        row_width,
        heap_bytes,
        page_size,
        crc_count,
        header_crc,
    ) = _FIXED.unpack(fixed)
    if magic != MAGIC:
        raise SpillCorruptionError(
            f"bad spill magic {magic!r} (expected {MAGIC!r})", path
        )
    if version not in _READABLE_VERSIONS:
        raise SpillCorruptionError(
            f"unsupported spill format version {version} "
            f"(this build reads versions {_READABLE_VERSIONS})",
            path,
        )
    if page_size <= 0 or header_bytes < _FIXED.size + 4 * crc_count:
        raise SpillCorruptionError(
            "inconsistent spill header geometry", path
        )
    extra_bytes = header_bytes - _FIXED.size - 4 * crc_count
    if version == 1 and extra_bytes:
        raise SpillCorruptionError(
            "inconsistent spill header geometry", path
        )
    tail = io.read(path, _FIXED.size, 4 * crc_count + extra_bytes)
    if len(tail) != 4 * crc_count + extra_bytes:
        raise SpillCorruptionError("truncated spill page-CRC table", path)
    table, extra = tail[: 4 * crc_count], tail[4 * crc_count :]
    expected = zlib.crc32(tail, zlib.crc32(fixed[:-4] + b"\x00" * 4))
    if expected != header_crc:
        raise SpillCorruptionError(
            f"spill header CRC mismatch (stored {header_crc:#010x}, "
            f"computed {expected:#010x})",
            path,
        )
    flat = struct.unpack(f"<{crc_count}I", table)
    lengths = (num_rows * key_width, num_rows * row_width, heap_bytes)
    counts = [_page_count(length, page_size) for length in lengths]
    if sum(counts) != crc_count:
        raise SpillCorruptionError(
            "spill page-CRC table does not match the section geometry",
            path,
        )
    crcs: list[tuple[int, ...]] = []
    cursor = 0
    for count in counts:
        crcs.append(flat[cursor : cursor + count])
        cursor += count
    return SpillHeader(
        num_rows=num_rows,
        key_width=key_width,
        row_width=row_width,
        heap_bytes=heap_bytes,
        page_size=page_size,
        page_crcs=tuple(crcs),
        extra=bytes(extra),
        version=version,
    )


def pack_extra(frames: dict[int, bytes]) -> bytes:
    """Serialize extra-blob frames in the version-3 tagged layout.

    Frames are written in ascending tag order so the blob is
    deterministic.  An empty dict packs to an empty blob.
    """
    parts = []
    for tag in sorted(frames):
        payload = frames[tag]
        if not 0 <= tag <= 255:
            raise ValueError(f"extra frame tag {tag} out of range")
        parts.append(_FRAME.pack(tag, len(payload)))
        parts.append(bytes(payload))
    return b"".join(parts)


def unpack_extra(extra: bytes, version: int, path: str) -> dict[int, bytes]:
    """Parse a header's extra blob into ``{tag: payload}`` frames.

    Version 3 blobs are tagged frames; a duplicate tag or a frame running
    past the blob raises :class:`SpillCorruptionError`.  A non-empty
    version-2 blob is the serialized key layout by definition, returned
    as a single :data:`EXTRA_TAG_LAYOUT` frame; version 1 never has one.
    """
    if not extra:
        return {}
    if version < 3:
        return {EXTRA_TAG_LAYOUT: bytes(extra)}
    frames: dict[int, bytes] = {}
    view = memoryview(extra)
    cursor = 0
    while cursor < len(view):
        if cursor + _FRAME.size > len(view):
            raise SpillCorruptionError(
                "truncated extra frame header in spill header blob", path
            )
        tag, length = _FRAME.unpack_from(view, cursor)
        cursor += _FRAME.size
        if cursor + length > len(view):
            raise SpillCorruptionError(
                f"extra frame (tag {tag}) runs past the spill header blob",
                path,
            )
        if tag in frames:
            raise SpillCorruptionError(
                f"duplicate extra frame tag {tag} in spill header blob",
                path,
            )
        frames[tag] = bytes(view[cursor : cursor + length])
        cursor += length
    return frames
