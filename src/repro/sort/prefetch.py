"""Overlapped, forecast-prioritized read-ahead for the external merge.

Every spill-page read used to happen synchronously on the k-way merge's
critical path: the kernel asked for a run's next frontier block, waited
for the seek + read + CRC32 verification, then resumed merging.  This
module moves those reads off the critical path.  A small thread pool
fetches and checksum-verifies blocks *ahead* of the merge -- real
overlap even in pure Python, because both the file reads and
``zlib.crc32`` release the GIL -- and the merge consumes them from
per-run queues, waiting only when read-ahead could not keep up.

Two block streams are prefetched per run, mirroring how the merge
consumes a spilled run:

* **key blocks** -- the frontier blocks :func:`~repro.sort.kernels.
  kway_merge_blocks` refills from, consumed strictly in order through
  :meth:`BlockPrefetcher.key_source`;
* **payload rows** -- each emitted round gathers one contiguous prefix
  of every contributing run's rows, so payload consumption trails key
  consumption run-by-run.  :meth:`BlockPrefetcher.read_rows` serves
  those gathers from a buffered window of payload blocks scheduled in
  lockstep with the delivered key blocks (for key-carried runs the
  "payload" is the keys section re-read at full width).

**Forecasting.**  Read-ahead slots are a scarce resource (see budget
below), so they go to the runs that will exhaust their buffered data
first.  The merge kernel's round cutoff is the minimum over the runs'
frontier-tail keys; the prefetcher applies the same rule to its own
buffers: each run's last-delivered block tail is compared against the
global minimum tail (one vectorized whole-row comparison via
:func:`~repro.sort.kernels.argsort_rows`), and runs are refilled in
ascending tail order -- the run owning the cutoff drains its frontier
every round, so its next block is needed soonest.

**Memory budget.**  At most ``depth`` blocks per run per stream are in
flight, and the *total* of in-flight fetches plus buffered-but-unread
payload blocks never exceeds a global block budget the caller charges
against ``SortConfig.run_threshold`` -- prefetch memory comes out of
the same budget that sizes runs, it is not an unaccounted side buffer.
``SortStats.prefetch_peak_blocks`` records the observed peak.

**Faults.**  Fetch tasks run the exact same verified-read path as
synchronous reads, so injected faults (:mod:`repro.sort.faults`) fire
inside prefetch threads; the raised typed :class:`~repro.errors.
SpillError` is captured by the future and re-raised on the consumer
thread at the point the merge consumes the block -- callers observe the
same error surface as the synchronous path, and :meth:`BlockPrefetcher.
close` (idempotent, called from the merge's ``finally``) cancels queued
fetches and joins the pool so no thread outlives the sort.

Counter attribution: background read+verify seconds land in
``phase_seconds["spill_io_overlap"]`` (overlapped, off the critical
path), consumer waits for not-yet-finished fetches in
``phase_seconds["io_wait"]``, and synchronous fallback reads stay in
``phase_seconds["spill_io"]`` as before.  All shared-stats mutation
happens on the consumer thread: worker tasks record into a private
:class:`~repro.sort.operator.SortStats` that is merged at delivery.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.sort.kernels import argsort_rows
from repro.sort.operator import SortStats

__all__ = ["BlockPrefetcher", "prefetch_budget_blocks"]

_MAX_WORKERS = 4
"""Thread-pool ceiling; more workers than this saturate one spill disk."""

_STATS_ATTR = "_prefetch_local_stats"
"""Attribute a failed fetch task hangs its local counters on, so checksum
failures observed inside a worker still reach the operator's stats."""


def prefetch_budget_blocks(
    depth: int, on_disk_runs: int, block_rows: int, run_threshold: int
) -> int:
    """Global read-ahead budget in blocks, charged against run memory.

    ``depth`` blocks per run per stream (keys + payload), capped at one
    run's memory allowance (``run_threshold`` rows' worth of blocks) --
    but never below two blocks per run, the minimum for each run to
    have one key and one payload block in flight.  That floor is
    proportional to the merge kernel's own frontier working set
    (``k * block_rows`` rows), so the prefetch layer stays within a
    constant factor of memory the merge already commits; without it, a
    small ``run_threshold`` would starve read-ahead into all-miss
    synchronous fallbacks.  Zero depth disables.
    """
    if depth <= 0 or on_disk_runs <= 0:
        return 0
    want = depth * 2 * on_disk_runs
    cap = max(
        2 * on_disk_runs, run_threshold // max(1, block_rows)
    )
    return max(1, min(want, cap))


class _RunState:
    """Per-run read-ahead bookkeeping (consumer-thread only)."""

    __slots__ = (
        "active",
        "num_rows",
        "key_blocks",
        "key_queue",
        "key_submitted",
        "key_delivered",
        "row_queue",
        "row_submitted",
        "row_delivered",
        "row_buffer",
        "tail",
    )

    def __init__(self, active: bool, num_rows: int, block_rows: int) -> None:
        self.active = active
        self.num_rows = num_rows
        self.key_blocks = -(-num_rows // block_rows) if num_rows else 0
        self.key_queue: deque[Future] = deque()
        self.key_submitted = 0  # next key block index to schedule
        self.key_delivered = 0  # key blocks handed to the merge kernel
        self.row_queue: deque[tuple[int, int, Future]] = deque()
        self.row_submitted = 0  # payload rows scheduled so far
        self.row_delivered = 0  # payload rows materialized into the buffer
        self.row_buffer: deque[tuple[int, np.ndarray]] = deque()
        self.tail: bytes | None = None  # last delivered key-block tail row


class BlockPrefetcher:
    """Double-buffered read-ahead over one merge's spilled runs.

    ``key_fetch(index, start, stop, stats)`` must return the run's
    ``(key block, ovc codes | None)`` for rows ``[start, stop)`` --
    rebased and truncated exactly as the merge wants them -- and
    ``row_fetch(index, start, stop, stats)`` the payload rows backing
    the same range.  Both are called from worker threads with a private
    stats object; they must only raise typed spill errors, which
    re-surface on the consumer thread.  Runs with ``active`` false
    (in-memory fallback runs) bypass the pool entirely.
    """

    def __init__(
        self,
        num_rows: Sequence[int],
        active: Sequence[bool],
        block_rows: int,
        key_fetch: Callable[[int, int, int, SortStats], tuple],
        row_fetch: Callable[[int, int, int, SortStats], np.ndarray] | None,
        depth: int,
        budget_blocks: int,
        stats: SortStats,
        cancel_event: object | None = None,
    ) -> None:
        self._block_rows = block_rows
        self._key_fetch = key_fetch
        self._row_fetch = row_fetch
        self._depth = max(1, depth)
        self._budget = budget_blocks
        self._stats = stats
        self._cancel_event = cancel_event
        self._runs = [
            _RunState(active[i], num_rows[i], block_rows)
            for i in range(len(num_rows))
        ]
        self._outstanding = 0  # submitted-but-unconsumed futures
        self._closed = False
        workers = min(_MAX_WORKERS, max(1, sum(map(bool, active))))
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="spill-prefetch"
            )
            if budget_blocks > 0
            else None
        )
        if self._pool is not None:
            self._schedule()

    # ------------------------------------------------------------------ #
    # Consumer API
    # ------------------------------------------------------------------ #

    def key_source(self, index: int) -> Iterator[tuple]:
        """The run's ``(key block, codes)`` stream, served via read-ahead."""
        state = self._runs[index]
        while state.key_delivered < state.key_blocks:
            yield self._next_key_block(index)

    def read_rows(self, index: int, start: int, stop: int) -> np.ndarray:
        """Payload rows ``[start, stop)``, served from the buffered window.

        The merge consumes each run's payload as ascending contiguous
        ranges, so the window only ever grows forward; ranges the
        scheduler has not reached yet are read synchronously (a miss).
        """
        state = self._runs[index]
        if self._pool is None or not state.active:
            return self._row_fetch(index, start, stop, self._stats)
        buffer = state.row_buffer
        while buffer and buffer[0][0] + len(buffer[0][1]) <= start:
            buffer.popleft()
        while state.row_delivered < stop and state.row_queue:
            lo, hi, future = state.row_queue.popleft()
            block = self._consume(future)
            buffer.append((lo, block))
            state.row_delivered = hi
        if state.row_delivered < stop:
            # Scheduler starvation: fetch the remainder on the critical
            # path (counted as a miss, timed as plain spill_io).
            self._stats.prefetch_misses += 1
            lo = min(start, state.row_delivered)
            block = self._row_fetch(index, lo, stop, self._stats)
            buffer.append((lo, block))
            state.row_delivered = stop
            state.row_submitted = max(state.row_submitted, stop)
        parts: list[np.ndarray] = []
        for lo, block in buffer:
            if lo >= stop:
                break
            a, b = max(start, lo), min(stop, lo + len(block))
            if b > a:
                parts.append(block[a - lo : b - lo])
        self._schedule()
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def close(self) -> None:
        """Cancel queued fetches and join the pool (idempotent).

        Called from the merge's ``finally`` so that no prefetch thread
        survives the sort -- success, typed failure, or cancellation.
        Completed-but-unconsumed fetches still contribute their
        verification counters before being dropped.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is None:
            return
        pending: list[Future] = []
        for state in self._runs:
            pending.extend(state.key_queue)
            pending.extend(future for _, _, future in state.row_queue)
            state.key_queue.clear()
            state.row_queue.clear()
        for future in pending:
            future.cancel()
        self._pool.shutdown(wait=True, cancel_futures=True)
        for future in pending:
            if future.cancelled() or not future.done():
                continue
            error = future.exception()  # mark retrieved; never re-raised
            if error is None:
                self._merge_local(future.result()[-1])
            else:
                local = getattr(error, _STATS_ATTR, None)
                if local is not None:
                    self._merge_local(local)

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def _next_key_block(self, index: int) -> tuple:
        state = self._runs[index]
        start = state.key_delivered * self._block_rows
        stop = min(start + self._block_rows, state.num_rows)
        if self._pool is None or not state.active:
            block, codes = self._key_fetch(index, start, stop, self._stats)
        elif not state.key_queue:
            # Scheduler starvation (budget below the run count): fetch
            # synchronously on the critical path.
            self._stats.prefetch_misses += 1
            block, codes = self._key_fetch(index, start, stop, self._stats)
            state.key_submitted = max(
                state.key_submitted, state.key_delivered + 1
            )
        else:
            block, codes = self._consume(state.key_queue.popleft())
        state.key_delivered += 1
        if len(block):
            state.tail = np.ascontiguousarray(block[-1]).tobytes()
        self._schedule()
        return block, codes

    def _consume(self, future: Future):
        """Resolve one fetch future, accounting hit/miss and wait time."""
        stats = self._stats
        if future.done():
            stats.prefetch_hits += 1
        else:
            stats.prefetch_misses += 1
            started = time.perf_counter()
            try:
                future.result()
            except BaseException:
                pass  # re-raised (with stats merged) below
            stats.add_phase_seconds(
                "io_wait", time.perf_counter() - started
            )
        self._outstanding -= 1
        try:
            payload = future.result()
        except BaseException as error:
            local = getattr(error, _STATS_ATTR, None)
            if local is not None:
                self._merge_local(local)
            raise
        self._merge_local(payload[-1])
        return payload[:-1] if len(payload) == 3 else payload[0]

    def _merge_local(self, local: SortStats) -> None:
        stats = self._stats
        stats.checksum_verifications += local.checksum_verifications
        stats.checksum_failures += local.checksum_failures
        for phase, seconds in local.phase_seconds.items():
            if phase == "spill_io":
                phase = "spill_io_overlap"
            stats.add_phase_seconds(phase, seconds)

    # ------------------------------------------------------------------ #
    # Scheduling (consumer thread only)
    # ------------------------------------------------------------------ #

    def _buffered_blocks(self) -> int:
        return self._outstanding + sum(
            len(state.row_buffer) for state in self._runs
        )

    def _schedule(self) -> None:
        if self._closed or self._pool is None:
            return
        # A cancelled sort schedules nothing further: the merge raises
        # at its next checkpoint and the closing pool should not be
        # racing new reads against the spill files' removal.
        event = self._cancel_event
        if event is not None and event.is_set():
            return
        while self._buffered_blocks() < self._budget:
            choice = self._pick()
            if choice is None:
                break
            index, kind = choice
            state = self._runs[index]
            if kind == "rows":
                lo = state.row_submitted
                hi = min(lo + self._block_rows, state.num_rows)
                future = self._pool.submit(self._row_task, index, lo, hi)
                state.row_queue.append((lo, hi, future))
                state.row_submitted = hi
                self._outstanding += 1
            else:
                block = state.key_submitted
                lo = block * self._block_rows
                hi = min(lo + self._block_rows, state.num_rows)
                future = self._pool.submit(self._key_task, index, lo, hi)
                state.key_queue.append(future)
                state.key_submitted = block + 1
                self._outstanding += 1
        peak = self._buffered_blocks()
        if peak > self._stats.prefetch_peak_blocks:
            self._stats.prefetch_peak_blocks = peak

    def _pick(self) -> tuple[int, str] | None:
        """The most urgent fetch to schedule, by the exhaustion forecast.

        Payload lagging behind delivered keys outranks key read-ahead
        (those rows are gathered *this* round, the next key block only
        at the next refill); within each class, runs are ordered by
        their last delivered tail key ascending -- the run at the global
        minimum (the merge's cutoff owner) drains first.
        """
        rows_lagging: list[int] = []
        keys_wanted: list[int] = []
        for index, state in enumerate(self._runs):
            if not state.active:
                continue
            if self._row_fetch is not None:
                delivered_rows = min(
                    state.key_delivered * self._block_rows, state.num_rows
                )
                queued = len(state.row_queue)
                if (
                    state.row_submitted < delivered_rows
                    and queued < self._depth
                ):
                    rows_lagging.append(index)
            if (
                state.key_submitted < state.key_blocks
                and len(state.key_queue) < self._depth
            ):
                keys_wanted.append(index)
        for candidates, kind in ((rows_lagging, "rows"), (keys_wanted, "keys")):
            if candidates:
                return self._most_urgent(candidates), kind
        return None

    def _most_urgent(self, candidates: list[int]) -> int:
        no_tail = [i for i in candidates if self._runs[i].tail is None]
        if no_tail:
            return no_tail[0]
        if len(candidates) == 1:
            return candidates[0]
        tails = np.frombuffer(
            b"".join(self._runs[i].tail for i in candidates), dtype=np.uint8
        ).reshape(len(candidates), -1)
        return candidates[int(argsort_rows(tails)[0])]

    # ------------------------------------------------------------------ #
    # Worker tasks
    # ------------------------------------------------------------------ #

    def _key_task(self, index: int, start: int, stop: int):
        local = SortStats()
        try:
            block, codes = self._key_fetch(index, start, stop, local)
        except BaseException as error:
            setattr(error, _STATS_ATTR, local)
            raise
        return block, codes, local

    def _row_task(self, index: int, start: int, stop: int):
        local = SortStats()
        try:
            block = self._row_fetch(index, start, stop, local)
        except BaseException as error:
            setattr(error, _STATS_ATTR, local)
            raise
        return block, local
