"""Stable bottom-up merge sort: the ``std::stable_sort`` analogue.

The paper replicates each micro-benchmark with ``std::stable_sort`` because
merge sort has a different cache behaviour from quicksort -- "primarily
sequential data access".  This port is a bottom-up merge sort with an
insertion-sorted base case and an auxiliary buffer, so its access pattern is
the same sequential streaming the paper relies on (and so the instrumented
twin in :mod:`repro.simsort` models the right thing).
"""

from __future__ import annotations

from typing import Any, Callable, MutableSequence

__all__ = ["CHUNK", "MergeStats", "merge_sort", "merge_argsort", "merge_runs"]

CHUNK = 16
"""Initial runs of this size are insertion sorted before merging starts."""

Less = Callable[[Any, Any], bool]


class MergeStats:
    """Counters describing one merge sort run."""

    __slots__ = ("comparisons", "moves")

    def __init__(self) -> None:
        self.comparisons = 0
        self.moves = 0


def _default_less(a: Any, b: Any) -> bool:
    return a < b


def merge_sort(
    items: MutableSequence[Any],
    less: Less | None = None,
    stats: MergeStats | None = None,
) -> None:
    """Sort ``items`` in place, stably, with bottom-up merge sort."""
    n = len(items)
    if n < 2:
        return
    less = less or _default_less

    def lt(x: Any, y: Any) -> bool:
        if stats is not None:
            stats.comparisons += 1
        return less(x, y)

    # Insertion sort each initial chunk.
    for start in range(0, n, CHUNK):
        stop = min(start + CHUNK, n)
        for i in range(start + 1, stop):
            value = items[i]
            j = i - 1
            while j >= start and lt(value, items[j]):
                items[j + 1] = items[j]
                j -= 1
            items[j + 1] = value

    # Bottom-up merging with an auxiliary buffer, doubling the run width.
    width = CHUNK
    src: list[Any] = list(items)
    dst: list[Any] = [None] * n
    while width < n:
        for start in range(0, n, 2 * width):
            mid = min(start + width, n)
            stop = min(start + 2 * width, n)
            _merge_into(src, dst, start, mid, stop, lt, stats)
        src, dst = dst, src
        width *= 2
    items[:] = src


def _merge_into(
    src: list[Any],
    dst: list[Any],
    start: int,
    mid: int,
    stop: int,
    lt: Less,
    stats: MergeStats | None,
) -> None:
    """Stable merge src[start:mid] and src[mid:stop] into dst[start:stop]."""
    i, j = start, mid
    for k in range(start, stop):
        # Take from the left run when it wins or ties (stability).
        if i < mid and (j >= stop or not lt(src[j], src[i])):
            dst[k] = src[i]
            i += 1
        else:
            dst[k] = src[j]
            j += 1
        if stats is not None:
            stats.moves += 1


def merge_argsort(keys: list[Any], less: Less | None = None) -> list[int]:
    """Indices that stably sort ``keys`` (ties keep input order)."""
    base_less = less or _default_less
    order = list(range(len(keys)))
    merge_sort(order, lambda i, j: base_less(keys[i], keys[j]))
    return order


def merge_runs(
    left: list[Any],
    right: list[Any],
    less: Less | None = None,
    stats: MergeStats | None = None,
) -> list[Any]:
    """Stable 2-way merge of two sorted lists into a new list.

    The primitive of the cascaded merge phase (paper, Figure 11): during
    merging, full tuples are compared -- with normalized keys that is one
    memcmp per comparison.
    """
    less = less or _default_less

    def lt(x: Any, y: Any) -> bool:
        if stats is not None:
            stats.comparisons += 1
        return less(x, y)

    out: list[Any] = [None] * (len(left) + len(right))
    i = j = 0
    for k in range(len(out)):
        if i < len(left) and (j >= len(right) or not lt(right[j], left[i])):
            out[k] = left[i]
            i += 1
        else:
            out[k] = right[j]
            j += 1
        if stats is not None:
            stats.moves += 1
    return out
