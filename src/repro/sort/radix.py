"""Radix sorts over normalized-key byte matrices.

Because normalized keys compare correctly byte-by-byte with memcmp, they can
be sorted with a byte-by-byte radix sort (paper, Section VI-B).  Two
variants, selected exactly like DuckDB:

* **LSD** (least significant digit first): one stable counting-sort pass per
  byte, right to left.  Streaming access, O(n * k); chosen for key widths
  <= :data:`LSD_WIDTH_THRESHOLD` bytes.
* **MSD** (most significant digit first): partition by the leading byte and
  recurse into each bucket, falling back to insertion sort for buckets of
  <= :data:`INSERTION_SORT_THRESHOLD` rows.  Chosen for wider keys, where
  LSD would pay k full passes.

Both implement the paper's skip-copy optimization: a counting pass whose
rows all fall into a single bucket performs no data movement, which "helps
slightly" with long common prefixes and duplicate keys.

The functions return a permutation (argsort) rather than moving the key
matrix; callers gather keys and payload with it.  Statistics about the work
performed are reported through an optional :class:`RadixStats`.

This module is the *scalar* (simulated-cost) implementation.  The fully
vectorized counterpart -- an iterative MSD counting sort built from
``np.bincount`` histograms and offset scatters -- lives in
:func:`repro.sort.kernels.radix_argsort_rows`; the runtime dispatch
between it and the lexsort/argsort kernels is
:func:`repro.sort.heuristic.vector_sort_rows`.  Both record into the same
:class:`RadixStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SortError
from repro.sort.kernels import argsort_rows

__all__ = [
    "LSD_WIDTH_THRESHOLD",
    "INSERTION_SORT_THRESHOLD",
    "VECTOR_FINISH_THRESHOLD",
    "RadixStats",
    "lsd_radix_argsort",
    "msd_radix_argsort",
    "radix_argsort",
]

LSD_WIDTH_THRESHOLD = 4
"""Use LSD radix sort for keys of at most this many bytes (DuckDB's rule)."""

INSERTION_SORT_THRESHOLD = 24
"""MSD recursion falls back to insertion sort at or below this bucket size."""

VECTOR_FINISH_THRESHOLD = 1 << 16
"""Default MSD bucket size finished with the vectorized whole-row argsort
kernel (:func:`repro.sort.kernels.argsort_rows`) when callers enable it."""


@dataclass
class RadixStats:
    """Counters describing the work one radix sort performed."""

    passes: int = 0
    skipped_passes: int = 0
    insertion_sorted_buckets: int = 0
    vector_finished_buckets: int = 0
    rows_moved: int = 0
    histogram: list[int] = field(default_factory=list)

    def record_pass(self, moved_rows: int, skipped: bool) -> None:
        self.passes += 1
        if skipped:
            self.skipped_passes += 1
        else:
            self.rows_moved += moved_rows


def _check_matrix(matrix: np.ndarray) -> None:
    if matrix.dtype != np.uint8 or matrix.ndim != 2:
        raise SortError("radix sort expects an (n, width) uint8 key matrix")


def lsd_radix_argsort(
    matrix: np.ndarray, stats: RadixStats | None = None
) -> np.ndarray:
    """Stable LSD radix argsort of the rows of a uint8 key matrix.

    One stable counting-sort pass per byte column, least significant first.
    Skips the data movement of any pass in which every row falls into the
    same bucket (the skip-copy optimization).
    """
    _check_matrix(matrix)
    n, width = matrix.shape
    order = np.arange(n, dtype=np.int64)
    if n <= 1:
        return order
    for byte_index in range(width - 1, -1, -1):
        # Skip-copy test on the *unpermuted* column view: "all rows land in
        # one bucket" is permutation-invariant, so a skipped pass performs
        # no gather at all (min/max over a strided view moves no data).
        static = matrix[:, byte_index]
        if static.min() == static.max():
            if stats is not None:
                stats.record_pass(0, skipped=True)
            continue
        column = matrix[order, byte_index]
        # A stable sort of one byte column is exactly a counting-sort pass
        # (numpy uses radix sort for stable uint8 argsort).
        order = order[np.argsort(column, kind="stable")]
        if stats is not None:
            stats.record_pass(n, skipped=False)
    return order


def _insertion_argsort_rows(
    matrix: np.ndarray, order: np.ndarray, start: int, stop: int, byte_index: int
) -> None:
    """Insertion sort ``order[start:stop]`` by key bytes from ``byte_index``.

    Small buckets at the bottom of the MSD recursion; compares row suffixes
    as Python bytes (a memcmp).
    """
    keys = {
        int(i): matrix[i, byte_index:].tobytes()
        for i in order[start:stop]
    }
    segment = sorted(order[start:stop], key=lambda i: keys[int(i)])
    order[start:stop] = segment


def _pdq_argsort_rows(
    matrix: np.ndarray, order: np.ndarray, start: int, stop: int, byte_index: int
) -> None:
    """pdqsort ``order[start:stop]`` by key-byte suffixes (memcmp).

    The paper's second future-work item: "pdqsort could be used within the
    recursive calls to MSD radix sort".  Used for buckets too large for
    insertion sort but where further byte passes would be wasteful.
    pdqsort is unstable, so the row-index tiebreak keeps the result
    deterministic and equal to the stable order.
    """
    from repro.sort.pdqsort import pdqsort

    keys = {
        int(i): (matrix[i, byte_index:].tobytes(), int(i))
        for i in order[start:stop]
    }
    segment = list(order[start:stop])
    pdqsort(segment, lambda a, b: keys[int(a)] < keys[int(b)])
    order[start:stop] = segment


def msd_radix_argsort(
    matrix: np.ndarray,
    stats: RadixStats | None = None,
    insertion_threshold: int = INSERTION_SORT_THRESHOLD,
    pdq_threshold: int | None = None,
    vector_threshold: int | None = None,
) -> np.ndarray:
    """Stable MSD radix argsort of the rows of a uint8 key matrix.

    Partitions on the most significant byte and recurses into each bucket
    (explicit stack, so key width and skew cannot overflow Python's
    recursion limit).  Buckets of at most ``insertion_threshold`` rows are
    finished with insertion sort, like the paper's implementation.

    ``pdq_threshold`` enables the paper's future-work variant: buckets of
    at most that many rows (but above the insertion threshold) are
    finished with pdqsort on memcmp instead of further radix passes.

    ``vector_threshold`` finishes buckets of at most that many rows with
    the vectorized whole-row argsort kernel
    (:func:`repro.sort.kernels.argsort_rows`) on the remaining key bytes --
    the kernel is stable, so the result is byte-identical to the scalar
    finishers.  It takes precedence over both scalar finishers.
    """
    _check_matrix(matrix)
    n, width = matrix.shape
    order = np.arange(n, dtype=np.int64)
    if n <= 1 or width == 0:
        return order
    # Each stack entry is a (start, stop, byte_index) range still to sort.
    stack: list[tuple[int, int, int]] = [(0, n, 0)]
    while stack:
        start, stop, byte_index = stack.pop()
        count = stop - start
        if count <= 1 or byte_index >= width:
            continue
        if vector_threshold is not None and count <= vector_threshold:
            sub = order[start:stop]
            suffix = np.ascontiguousarray(matrix[sub, byte_index:])
            order[start:stop] = sub[argsort_rows(suffix)]
            if stats is not None:
                stats.vector_finished_buckets += 1
            continue
        if count <= insertion_threshold:
            _insertion_argsort_rows(matrix, order, start, stop, byte_index)
            if stats is not None:
                stats.insertion_sorted_buckets += 1
            continue
        if pdq_threshold is not None and count <= pdq_threshold:
            _pdq_argsort_rows(matrix, order, start, stop, byte_index)
            if stats is not None:
                stats.insertion_sorted_buckets += 1
            continue
        column = matrix[order[start:stop], byte_index]
        first = column[0]
        if bool((column == first).all()):
            # Skip-copy: single bucket, no movement; descend a byte.
            if stats is not None:
                stats.record_pass(0, skipped=True)
            stack.append((start, stop, byte_index + 1))
            continue
        local = np.argsort(column, kind="stable")
        order[start:stop] = order[start:stop][local]
        if stats is not None:
            stats.record_pass(count, skipped=False)
        # Find bucket boundaries and recurse into each bucket.
        sorted_column = column[local]
        boundaries = np.flatnonzero(np.diff(sorted_column)) + 1
        bucket_starts = np.concatenate(([0], boundaries))
        bucket_stops = np.concatenate((boundaries, [count]))
        if stats is not None:
            stats.histogram.append(len(bucket_starts))
        for b_start, b_stop in zip(bucket_starts, bucket_stops):
            if b_stop - b_start > 1:
                stack.append(
                    (start + int(b_start), start + int(b_stop), byte_index + 1)
                )
    return order


def radix_argsort(
    matrix: np.ndarray,
    stats: RadixStats | None = None,
    lsd_threshold: int = LSD_WIDTH_THRESHOLD,
    vector_threshold: int | None = None,
) -> np.ndarray:
    """DuckDB's algorithm choice: LSD for narrow keys, MSD otherwise.

    ``vector_threshold`` is forwarded to :func:`msd_radix_argsort` to
    finish buckets with the vectorized whole-row argsort kernel.
    """
    _check_matrix(matrix)
    if matrix.shape[1] <= lsd_threshold:
        return lsd_radix_argsort(matrix, stats)
    return msd_radix_argsort(matrix, stats, vector_threshold=vector_threshold)
