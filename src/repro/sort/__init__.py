"""Sorting: algorithms, merge machinery, and the relational sort operator."""

from repro.sort.analysis import (
    ComparisonBudget,
    comparison_budget,
    crossover_runs,
    merge_comparisons,
    run_generation_comparisons,
    run_generation_share,
)
from repro.sort.external import (
    ExternalSortOperator,
    InMemoryRun,
    SpilledRun,
    external_sort_table,
)
from repro.sort.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultStats,
    InjectedFault,
    SpillIO,
)
from repro.sort.incremental import (
    IncrementalSorter,
    IncrementalStats,
)
from repro.sort.heuristic import (
    RADIX_MIN_ROWS,
    RADIX_SKEW_LIMIT,
    KeyStatistics,
    choose_algorithm,
    choose_vector_path,
    estimate_costs,
    vector_sort_rows,
)
from repro.sort.introsort import IntroStats, intro_argsort, introsort
from repro.sort.kernels import (
    RADIX_FINISH_ROWS,
    KWayBlockStats,
    argsort_rows,
    kway_merge_blocks,
    merge_indices,
    merge_matrices,
    radix_argsort_rows,
    void_view,
)
from repro.sort.kway import (
    KWayStats,
    cascade_merge,
    cascade_merge_indices,
    kway_merge,
    kway_merge_indices,
    kway_merge_stream,
)
from repro.sort.merge_path import (
    merge_partitioned,
    merge_path_partition,
    merge_path_partitions,
)
from repro.sort.mergesort import MergeStats, merge_argsort, merge_runs, merge_sort
from repro.sort.operator import (
    SortConfig,
    SortOperator,
    SortStats,
    SortedRun,
    sort_table,
)
from repro.sort.pdqsort import PdqStats, pdq_argsort, pdqsort
from repro.sort.spillfile import SpillHeader, build_header, read_header
from repro.sort.radix import (
    INSERTION_SORT_THRESHOLD,
    LSD_WIDTH_THRESHOLD,
    VECTOR_FINISH_THRESHOLD,
    RadixStats,
    lsd_radix_argsort,
    msd_radix_argsort,
    radix_argsort,
)
from repro.sort.topn import TopNOperator, top_n

__all__ = [
    "ComparisonBudget",
    "comparison_budget",
    "crossover_runs",
    "merge_comparisons",
    "run_generation_comparisons",
    "run_generation_share",
    "ExternalSortOperator",
    "InMemoryRun",
    "SpilledRun",
    "external_sort_table",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultStats",
    "InjectedFault",
    "SpillIO",
    "SpillHeader",
    "build_header",
    "read_header",
    "KeyStatistics",
    "choose_algorithm",
    "choose_vector_path",
    "estimate_costs",
    "vector_sort_rows",
    "RADIX_MIN_ROWS",
    "RADIX_SKEW_LIMIT",
    "IncrementalSorter",
    "IncrementalStats",
    "IntroStats",
    "intro_argsort",
    "introsort",
    "KWayStats",
    "KWayBlockStats",
    "argsort_rows",
    "kway_merge_blocks",
    "merge_indices",
    "merge_matrices",
    "radix_argsort_rows",
    "RADIX_FINISH_ROWS",
    "void_view",
    "cascade_merge",
    "cascade_merge_indices",
    "kway_merge",
    "kway_merge_indices",
    "kway_merge_stream",
    "merge_partitioned",
    "merge_path_partition",
    "merge_path_partitions",
    "MergeStats",
    "merge_argsort",
    "merge_runs",
    "merge_sort",
    "SortConfig",
    "SortOperator",
    "SortStats",
    "SortedRun",
    "sort_table",
    "PdqStats",
    "pdq_argsort",
    "pdqsort",
    "INSERTION_SORT_THRESHOLD",
    "LSD_WIDTH_THRESHOLD",
    "VECTOR_FINISH_THRESHOLD",
    "RadixStats",
    "lsd_radix_argsort",
    "msd_radix_argsort",
    "radix_argsort",
    "TopNOperator",
    "top_n",
]
