"""The run-generation vs merge comparison-count analysis of Section II.

The paper argues that run generation dominates relational sorting: with k
sorted runs of n total rows,

* run generation performs  comp_A = n*log2(n) - n*log2(k)  comparisons
  (k comparison sorts of n/k rows each), and
* the merge performs       comp_B = n*log2(k)  comparisons
  (log2(k) per output element),

so comp_A > comp_B whenever k < sqrt(n).  Since k is usually the thread
count and n the (arbitrarily large) input, run generation takes the bulk of
the work.  These helpers compute both terms, the crossover, and the
run-generation share -- the benchmark harness checks measured comparison
counts against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SortError

__all__ = [
    "run_generation_comparisons",
    "merge_comparisons",
    "crossover_runs",
    "run_generation_share",
    "ComparisonBudget",
    "comparison_budget",
]


def run_generation_comparisons(n: int, k: int) -> float:
    """comp_A: average comparisons to sort k runs of n/k rows each."""
    if n <= 0 or k <= 0 or k > n:
        raise SortError(f"need 0 < k <= n, got n={n}, k={k}")
    if n == k:
        return 0.0
    return n * math.log2(n) - n * math.log2(k)


def merge_comparisons(n: int, k: int) -> float:
    """comp_B: average comparisons to k-way merge k runs of n total rows."""
    if n <= 0 or k <= 0 or k > n:
        raise SortError(f"need 0 < k <= n, got n={n}, k={k}")
    return n * math.log2(k)


def crossover_runs(n: int) -> float:
    """The k beyond which merging costs more than run generation: sqrt(n)."""
    if n <= 0:
        raise SortError(f"need n > 0, got {n}")
    return math.sqrt(n)


def run_generation_share(n: int, k: int) -> float:
    """Fraction of all comparisons spent in run generation.

    The paper's example: n = 1,000,000 and k = 16 gives about 80%.
    """
    comp_a = run_generation_comparisons(n, k)
    comp_b = merge_comparisons(n, k)
    total = comp_a + comp_b
    if total == 0:
        return 0.0
    return comp_a / total


@dataclass(frozen=True)
class ComparisonBudget:
    """comp_A, comp_B, and derived quantities for one (n, k) point."""

    n: int
    k: int
    run_generation: float
    merge: float

    @property
    def total(self) -> float:
        return self.run_generation + self.merge

    @property
    def run_generation_share(self) -> float:
        return self.run_generation / self.total if self.total else 0.0

    @property
    def merge_dominates(self) -> bool:
        return self.merge > self.run_generation


def comparison_budget(n: int, k: int) -> ComparisonBudget:
    """Both §II terms for (n, k) in one record."""
    return ComparisonBudget(
        n=n,
        k=k,
        run_generation=run_generation_comparisons(n, k),
        merge=merge_comparisons(n, k),
    )
