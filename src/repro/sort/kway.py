"""K-way merging of sorted runs.

ClickHouse, HyPer, and Umbra merge their thread-local sorted runs with a
k-way merge (paper, Section VII); DuckDB instead cascades 2-way merges.
Both are provided here.  The k-way merge uses a binary tournament heap, so
each output element costs about log2(k) comparisons -- the ``comp_B`` term
of the paper's Section II analysis.

Stability: runs are merged with run index as the tiebreaker, so the merge
is stable across runs if each run is internally stable and runs are given
in input order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.sort.kernels import KWayBlockStats, kway_merge_blocks, merge_indices

__all__ = [
    "KWayStats",
    "kway_merge",
    "cascade_merge",
    "cascade_merge_indices",
    "kway_merge_indices",
    "kway_merge_stream",
]

DEFAULT_FRONTIER_ROWS = 4096
"""Frontier block size of the streaming k-way kernel (rows per run)."""

Less = Callable[[Any, Any], bool]


class KWayStats:
    """Counters describing a merge phase."""

    __slots__ = ("comparisons", "moves", "rounds")

    def __init__(self) -> None:
        self.comparisons = 0
        self.moves = 0
        self.rounds = 0


class _HeapKey:
    """Adapter making an arbitrary ``less`` usable inside heapq."""

    __slots__ = ("value", "run", "less", "stats")

    def __init__(self, value: Any, run: int, less: Less, stats) -> None:
        self.value = value
        self.run = run
        self.less = less
        self.stats = stats

    def __lt__(self, other: "_HeapKey") -> bool:
        if self.stats is not None:
            self.stats.comparisons += 1
        if self.less(self.value, other.value):
            return True
        if self.less(other.value, self.value):
            return False
        return self.run < other.run  # stability across runs


def _default_less(a: Any, b: Any) -> bool:
    return a < b


def kway_merge(
    runs: Sequence[Iterable[Any]],
    less: Less | None = None,
    stats: KWayStats | None = None,
) -> list[Any]:
    """Merge ``k`` sorted runs into one sorted list with a tournament heap."""
    less = less or _default_less
    iterators = [iter(run) for run in runs]
    heap: list[_HeapKey] = []
    for run_index, iterator in enumerate(iterators):
        try:
            first = next(iterator)
        except StopIteration:
            continue
        heap.append(_HeapKey(first, run_index, less, stats))
    heapq.heapify(heap)
    out: list[Any] = []
    while heap:
        head = heap[0]
        out.append(head.value)
        if stats is not None:
            stats.moves += 1
        try:
            replacement = next(iterators[head.run])
        except StopIteration:
            heapq.heappop(heap)
            continue
        heapq.heapreplace(
            heap, _HeapKey(replacement, head.run, less, stats)
        )
    return out


def cascade_merge(
    runs: Sequence[list[Any]],
    less: Less | None = None,
    stats: KWayStats | None = None,
) -> list[Any]:
    """DuckDB-style cascaded 2-way merge: pair up runs until one remains.

    Each round merges adjacent pairs (preserving run order for stability).
    With r runs there are ceil(log2(r)) rounds; every round streams all n
    elements once, which is why the cascade is easy to parallelize with
    Merge Path but does more data movement than one k-way pass.
    """
    from repro.sort.mergesort import merge_runs

    base_less = less or _default_less
    if stats is not None:
        def counting_less(x: Any, y: Any) -> bool:
            stats.comparisons += 1
            return base_less(x, y)
        effective_less: Less = counting_less
    else:
        effective_less = base_less
    current = [list(run) for run in runs]
    if not current:
        return []
    while len(current) > 1:
        if stats is not None:
            stats.rounds += 1
        paired: list[list[Any]] = []
        for i in range(0, len(current) - 1, 2):
            merged = merge_runs(current[i], current[i + 1], effective_less)
            if stats is not None:
                stats.moves += len(merged)
            paired.append(merged)
        if len(current) % 2 == 1:
            paired.append(current[-1])
        current = paired
    return current[0]


def cascade_merge_indices(
    runs: Sequence[np.ndarray], stats: KWayStats | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized cascaded 2-way merge of sorted normalized-key matrices.

    ``runs`` holds k row-sorted ``(n_i, width)`` uint8 key matrices of one
    shared width.  Returns ``(run_ids, row_ids)``: output position ``p``
    takes row ``row_ids[p]`` of ``runs[run_ids[p]]``.  Ties resolve to the
    earlier run (stable), matching :func:`cascade_merge` -- but each round
    is two ``np.searchsorted`` calls per pair
    (:func:`repro.sort.kernels.merge_indices`) instead of a Python loop.
    """
    entries = [
        (
            np.ascontiguousarray(keys),
            np.full(len(keys), index, dtype=np.int64),
            np.arange(len(keys), dtype=np.int64),
        )
        for index, keys in enumerate(runs)
        if len(keys)
    ]
    if not entries:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    while len(entries) > 1:
        if stats is not None:
            stats.rounds += 1
        paired = []
        for i in range(0, len(entries) - 1, 2):
            keys_a, runs_a, rows_a = entries[i]
            keys_b, runs_b, rows_b = entries[i + 1]
            perm = merge_indices(keys_a, keys_b)
            paired.append(
                (
                    np.concatenate([keys_a, keys_b])[perm],
                    np.concatenate([runs_a, runs_b])[perm],
                    np.concatenate([rows_a, rows_b])[perm],
                )
            )
            if stats is not None:
                stats.moves += len(perm)
        if len(entries) % 2 == 1:
            paired.append(entries[-1])
        entries = paired
    _, run_ids, row_ids = entries[0]
    return run_ids, row_ids


def kway_merge_stream(
    sources: Sequence[Iterable[np.ndarray]],
    block_stats: KWayBlockStats | None = None,
    on_round: Callable[[], None] | None = None,
    *,
    use_ovc: bool = True,
    emit_keys: bool = False,
    prefetcher=None,
):
    """Drive the block-streaming k-way kernel with per-round checkpoints.

    Yields the kernel's rounds unchanged -- ``(run_ids, row_ids)``
    tuples, or ``(run_ids, row_ids, merged_words)`` when ``emit_keys``
    is set -- but invokes ``on_round`` before emitting each one.  The
    callback is the cooperative-cancellation (and progress) hook of
    long-running merges: the external sort raises
    :class:`repro.errors.SortCancelledError` from it, unwinding the
    merge between rounds -- never mid-read -- so cleanup always sees a
    consistent set of spill files.  ``use_ovc`` and ``emit_keys`` are
    forwarded to :func:`repro.sort.kernels.kway_merge_blocks`.

    ``prefetcher``, when given, is the read-ahead layer feeding
    ``sources`` (:class:`repro.sort.prefetch.BlockPrefetcher`); its
    ``close()`` is invoked -- idempotently -- when the stream ends for
    any reason (exhaustion, an error raised by a source or the
    consumer, or an early ``close()`` of this generator), so no fetch
    thread outlives the merge it was reading ahead for.
    """
    stats = block_stats or KWayBlockStats()
    try:
        rounds = kway_merge_blocks(
            sources, stats, use_ovc=use_ovc, emit_keys=emit_keys
        )
        for item in rounds:
            if on_round is not None:
                on_round()
            yield item
    finally:
        if prefetcher is not None:
            prefetcher.close()


def kway_merge_indices(
    runs: Sequence[np.ndarray],
    block_rows: int = DEFAULT_FRONTIER_ROWS,
    stats: KWayStats | None = None,
    block_stats: KWayBlockStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-pass vectorized k-way merge of sorted normalized-key matrices.

    Same contract as :func:`cascade_merge_indices` -- ``(run_ids, row_ids)``
    with ties stable toward the earlier run -- but built on the
    block-streaming frontier kernel
    (:func:`repro.sort.kernels.kway_merge_blocks`): every row is touched
    once instead of once per cascade round, and the kernel's working set is
    ``k * block_rows`` key rows regardless of run sizes.
    """

    def blocks_of(matrix: np.ndarray):
        contiguous = np.ascontiguousarray(matrix)
        for start in range(0, len(contiguous), block_rows):
            yield contiguous[start : start + block_rows]

    kernel_stats = block_stats or KWayBlockStats()
    run_parts: list[np.ndarray] = []
    row_parts: list[np.ndarray] = []
    sources = [blocks_of(matrix) for matrix in runs if len(matrix)]
    alive = [index for index, matrix in enumerate(runs) if len(matrix)]
    remap = np.asarray(alive, dtype=np.int64)
    for run_ids, row_ids in kway_merge_blocks(sources, kernel_stats):
        run_parts.append(remap[run_ids])
        row_parts.append(row_ids)
    if stats is not None:
        stats.rounds += kernel_stats.rounds
        stats.moves += kernel_stats.rows_emitted
    if not run_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(run_parts), np.concatenate(row_parts)
