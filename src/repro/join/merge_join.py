"""Sort-merge equi-join: the classic consumer of sorted runs.

The paper motivates efficient relational sorting partly through join
algorithms: "merge joins ... iterate sequentially over sorted runs and
compare tuples", requiring the full tuple comparisons that make
interpreted engines slow and normalized keys attractive (Section V-B).

This operator does exactly that: both inputs are sorted by their join
keys with the paper's sort operator (normalized keys and all), then a
single merge pass aligns equal-key groups and emits their cross products.
Comparisons during the merge are memcmp over normalized keys -- the
behaviour Section V-B argues for.

SQL semantics: NULL join keys match nothing (inner join), and rows within
a group keep their sorted order, so output order is deterministic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.operator import SortConfig, sort_table
from repro.table.table import Table
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortKey, SortSpec

__all__ = ["merge_join"]


def _prefixed_schema(schema: Schema, prefix: str, other: Schema) -> list[str]:
    """Output names for one side, prefixing collisions with ``prefix``."""
    names = []
    for column in schema.names:
        if column in other:
            names.append(f"{prefix}{column}")
        else:
            names.append(column)
    return names


def _group_boundaries(matrix: np.ndarray) -> np.ndarray:
    """Start offsets of equal-key groups in a sorted key matrix."""
    n = len(matrix)
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    changed = np.any(matrix[1:] != matrix[:-1], axis=1)
    starts = np.concatenate(([0], np.flatnonzero(changed) + 1, [n]))
    return starts.astype(np.int64)


def merge_join(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    left_prefix: str = "l_",
    right_prefix: str = "r_",
    config: SortConfig | None = None,
) -> Table:
    """Inner sort-merge join of two tables on equality of key columns.

    Args:
        left, right: input tables.
        left_keys, right_keys: equal-length column lists joined pairwise.
        left_prefix, right_prefix: prefixes applied to colliding output
            column names.
        config: sort configuration for the two input sorts.

    Returns:
        The joined table: all left columns then all right columns, with
        key groups in key order and pairs in (left-sorted, right-sorted)
        nested order.
    """
    left_keys = list(left_keys)
    right_keys = list(right_keys)
    if len(left_keys) != len(right_keys) or not left_keys:
        raise SortError("join needs equally many key columns on both sides")
    for name in left_keys:
        left.schema.column(name)
    for name in right_keys:
        right.schema.column(name)
    for lk, rk in zip(left_keys, right_keys):
        lt = left.schema.column(lk).dtype
        rt = right.schema.column(rk).dtype
        if lt.type_id is not rt.type_id:
            raise SortError(
                f"cannot join {lk} ({lt.name}) with {rk} ({rt.name})"
            )

    left_spec = SortSpec(tuple(SortKey(k) for k in left_keys))
    right_spec = SortSpec(tuple(SortKey(k) for k in right_keys))
    left_sorted = sort_table(left, left_spec, config)
    right_sorted = sort_table(right, right_spec, config)

    # Normalized keys with a fixed string prefix: both sides share one
    # encoding, so group alignment is memcmp over byte rows.  A truncated
    # prefix only over-groups; exact equality is re-checked per group.
    left_norm = normalize_keys(
        left_sorted, left_spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )
    right_norm = normalize_keys(
        right_sorted, right_spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )
    prefix_exact = left_norm.prefix_exact and right_norm.prefix_exact

    left_valid = _all_keys_valid(left_sorted, left_keys)
    right_valid = _all_keys_valid(right_sorted, right_keys)

    left_starts = _group_boundaries(left_norm.matrix)
    right_starts = _group_boundaries(right_norm.matrix)

    left_out: list[np.ndarray] = []
    right_out: list[np.ndarray] = []
    li = ri = 0
    while li + 1 < len(left_starts) and ri + 1 < len(right_starts):
        l_start, l_stop = int(left_starts[li]), int(left_starts[li + 1])
        r_start, r_stop = int(right_starts[ri]), int(right_starts[ri + 1])
        l_key = left_norm.matrix[l_start].tobytes()
        r_key = right_norm.matrix[r_start].tobytes()
        if l_key < r_key:
            li += 1
        elif r_key < l_key:
            ri += 1
        else:
            _emit_group(
                left_sorted, right_sorted, left_keys, right_keys,
                left_valid, right_valid, prefix_exact,
                l_start, l_stop, r_start, r_stop, left_out, right_out,
            )
            li += 1
            ri += 1

    left_index = (
        np.concatenate(left_out) if left_out else np.zeros(0, dtype=np.int64)
    )
    right_index = (
        np.concatenate(right_out) if right_out else np.zeros(0, dtype=np.int64)
    )
    left_rows = left_sorted.take(left_index)
    right_rows = right_sorted.take(right_index)

    left_names = _prefixed_schema(left.schema, left_prefix, right.schema)
    right_names = _prefixed_schema(right.schema, right_prefix, left.schema)
    columns = list(left_rows.columns) + list(right_rows.columns)
    defs = tuple(
        ColumnDef(name, col.dtype)
        for name, col in zip(left_names + right_names, columns)
    )
    return Table(Schema(defs), columns)


def _all_keys_valid(table: Table, keys: list[str]) -> np.ndarray:
    valid = np.ones(table.num_rows, dtype=bool)
    for name in keys:
        valid &= table.column(name).validity
    return valid


def _emit_group(
    left_sorted: Table,
    right_sorted: Table,
    left_keys: list[str],
    right_keys: list[str],
    left_valid: np.ndarray,
    right_valid: np.ndarray,
    prefix_exact: bool,
    l_start: int,
    l_stop: int,
    r_start: int,
    r_stop: int,
    left_out: list[np.ndarray],
    right_out: list[np.ndarray],
) -> None:
    """Emit the cross product of one matched key group.

    NULL keys match nothing; when string prefixes were truncated the
    group's rows are re-checked on full values (a prefix group may mix
    several true keys).
    """
    l_index = np.arange(l_start, l_stop, dtype=np.int64)[
        left_valid[l_start:l_stop]
    ]
    r_index = np.arange(r_start, r_stop, dtype=np.int64)[
        right_valid[r_start:r_stop]
    ]
    if len(l_index) == 0 or len(r_index) == 0:
        return
    if prefix_exact:
        left_out.append(np.repeat(l_index, len(r_index)))
        right_out.append(np.tile(r_index, len(l_index)))
        return
    # Truncated prefixes: group by exact values within the prefix group.
    for li in l_index:
        l_values = tuple(
            left_sorted.column(k).value(int(li)) for k in left_keys
        )
        for ri in r_index:
            r_values = tuple(
                right_sorted.column(k).value(int(ri)) for k in right_keys
            )
            if l_values == r_values:
                left_out.append(np.array([li], dtype=np.int64))
                right_out.append(np.array([ri], dtype=np.int64))
