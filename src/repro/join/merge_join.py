"""Sort-merge equi-join: the classic consumer of sorted runs.

The paper motivates efficient relational sorting partly through join
algorithms: "merge joins ... iterate sequentially over sorted runs and
compare tuples", requiring the full tuple comparisons that make
interpreted engines slow and normalized keys attractive (Section V-B).

This operator does exactly that: both inputs are sorted by their join
keys with the paper's sort operator (normalized keys and all), then the
equal-key groups of the two sides are aligned and their cross products
emitted.  The alignment itself is vectorized over the kernel layer's
whole-row scalars (:func:`repro.sort.kernels.void_view`): one
``searchsorted`` matches every left group against the right side's
group representatives in memcmp order -- the same comparison the k-way
merge kernel streams through -- and the matched groups' cross products
are expanded with ``repeat``/arange arithmetic, no per-group Python
loop.

Planner integration: ``left_presorted`` / ``right_presorted`` skip that
side's input sort when the caller (the optimizer's order-propagation
pass, :mod:`repro.engine.plan`) knows the input already arrives sorted
by its join keys; ``stats.sorts_elided`` counts each skipped sort.

SQL semantics: NULL join keys match nothing (inner join), and rows
within a group keep their sorted order, so output order is
deterministic -- key groups ascend by the left join keys, pairs within
a group are in (left-sorted, right-sorted) nested order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.kernels import void_view
from repro.sort.operator import SortConfig, sort_table
from repro.table.table import Table
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortKey, SortSpec

__all__ = ["merge_join"]


def _prefixed_schema(schema: Schema, prefix: str, other: Schema) -> list[str]:
    """Output names for one side, prefixing collisions with ``prefix``."""
    names = []
    for column in schema.names:
        if column in other:
            names.append(f"{prefix}{column}")
        else:
            names.append(column)
    return names


def _group_boundaries(matrix: np.ndarray) -> np.ndarray:
    """Start offsets of equal-key groups in a sorted key matrix."""
    n = len(matrix)
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    changed = np.any(matrix[1:] != matrix[:-1], axis=1)
    starts = np.concatenate(([0], np.flatnonzero(changed) + 1, [n]))
    return starts.astype(np.int64)


def merge_join(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    left_prefix: str = "l_",
    right_prefix: str = "r_",
    config: SortConfig | None = None,
    left_presorted: bool = False,
    right_presorted: bool = False,
    stats=None,
) -> Table:
    """Inner sort-merge join of two tables on equality of key columns.

    Args:
        left, right: input tables.
        left_keys, right_keys: equal-length column lists joined pairwise.
        left_prefix, right_prefix: prefixes applied to colliding output
            column names.
        config: sort configuration for the two input sorts.
        left_presorted, right_presorted: skip that side's input sort;
            the caller asserts the table already arrives sorted by its
            join keys (ascending, NULLS LAST) -- the planner sets this
            from the provided-ordering derivation.
        stats: optional :class:`repro.sort.operator.SortStats`;
            ``sorts_elided`` counts each presorted side.

    Returns:
        The joined table: all left columns then all right columns, with
        key groups in key order and pairs in (left-sorted, right-sorted)
        nested order.
    """
    left_keys = list(left_keys)
    right_keys = list(right_keys)
    if len(left_keys) != len(right_keys) or not left_keys:
        raise SortError("join needs equally many key columns on both sides")
    for name in left_keys:
        left.schema.column(name)
    for name in right_keys:
        right.schema.column(name)
    for lk, rk in zip(left_keys, right_keys):
        lt = left.schema.column(lk).dtype
        rt = right.schema.column(rk).dtype
        if lt.type_id is not rt.type_id:
            raise SortError(
                f"cannot join {lk} ({lt.name}) with {rk} ({rt.name})"
            )

    left_spec = SortSpec(tuple(SortKey(k) for k in left_keys))
    right_spec = SortSpec(tuple(SortKey(k) for k in right_keys))
    if left_presorted:
        left_sorted = left
        if stats is not None:
            stats.sorts_elided += 1
    else:
        left_sorted = sort_table(left, left_spec, config)
    if right_presorted:
        right_sorted = right
        if stats is not None:
            stats.sorts_elided += 1
    else:
        right_sorted = sort_table(right, right_spec, config)

    # Normalized keys with a fixed string prefix: both sides share one
    # encoding, so group alignment is memcmp over byte rows.  A truncated
    # prefix only over-groups; exact equality is re-checked per pair.
    left_norm = normalize_keys(
        left_sorted, left_spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )
    right_norm = normalize_keys(
        right_sorted, right_spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )

    left_index, right_index = _align_groups(
        left_sorted, right_sorted, left_keys, right_keys,
        left_norm, right_norm,
    )
    left_rows = left_sorted.take(left_index)
    right_rows = right_sorted.take(right_index)

    left_names = _prefixed_schema(left.schema, left_prefix, right.schema)
    right_names = _prefixed_schema(right.schema, right_prefix, left.schema)
    columns = list(left_rows.columns) + list(right_rows.columns)
    defs = tuple(
        ColumnDef(name, col.dtype)
        for name, col in zip(left_names + right_names, columns)
    )
    return Table(Schema(defs), columns)


def _all_keys_valid(table: Table, keys: list[str]) -> np.ndarray:
    valid = np.ones(table.num_rows, dtype=bool)
    for name in keys:
        valid &= table.column(name).validity
    return valid


def _align_groups(
    left_sorted: Table,
    right_sorted: Table,
    left_keys: list[str],
    right_keys: list[str],
    left_norm,
    right_norm,
) -> tuple[np.ndarray, np.ndarray]:
    """Row index pairs of the join, fully vectorized.

    NULL keys are dropped up front (they match nothing, and both specs
    sort them last so removal preserves group contiguity); group
    representatives are matched side-to-side with one ``searchsorted``
    over whole-row void scalars; matched groups expand to their cross
    products with repeat/arange arithmetic.  When a string prefix was
    truncated the candidate pairs are re-checked against the full
    values in one vectorized comparison per affected key column.
    """
    empty = np.zeros(0, dtype=np.int64)
    l_rows = np.flatnonzero(_all_keys_valid(left_sorted, left_keys))
    r_rows = np.flatnonzero(_all_keys_valid(right_sorted, right_keys))
    if len(l_rows) == 0 or len(r_rows) == 0:
        return empty, empty
    l_matrix = left_norm.matrix[l_rows]
    r_matrix = right_norm.matrix[r_rows]
    left_starts = _group_boundaries(l_matrix)
    right_starts = _group_boundaries(r_matrix)

    l_group_keys = void_view(np.ascontiguousarray(l_matrix[left_starts[:-1]]))
    r_group_keys = void_view(np.ascontiguousarray(r_matrix[right_starts[:-1]]))
    pos = np.searchsorted(r_group_keys, l_group_keys)
    in_range = pos < len(r_group_keys)
    matched = np.zeros(len(l_group_keys), dtype=bool)
    matched[in_range] = r_group_keys[pos[in_range]] == l_group_keys[in_range]
    lg = np.flatnonzero(matched)
    rg = pos[matched]
    if len(lg) == 0:
        return empty, empty

    l_start = left_starts[lg]
    l_len = left_starts[lg + 1] - l_start
    r_start = right_starts[rg]
    r_len = right_starts[rg + 1] - r_start
    pair_counts = l_len * r_len
    total = int(pair_counts.sum())
    base = np.repeat(np.cumsum(pair_counts) - pair_counts, pair_counts)
    ordinal = np.arange(total, dtype=np.int64) - base
    r_len_rep = np.repeat(r_len, pair_counts)
    left_pos = np.repeat(l_start, pair_counts) + ordinal // r_len_rep
    right_pos = np.repeat(r_start, pair_counts) + ordinal % r_len_rep
    left_index = l_rows[left_pos]
    right_index = r_rows[right_pos]

    # Truncated prefixes over-group: re-check exact equality per pair,
    # only for key columns whose prefix was inexact on either side.
    l_segments = left_norm.layout.segments
    r_segments = right_norm.layout.segments
    keep = None
    for i, (lk, rk) in enumerate(zip(left_keys, right_keys)):
        if l_segments[i].prefix_exact and r_segments[i].prefix_exact:
            continue
        equal = (
            left_sorted.column(lk).data[left_index]
            == right_sorted.column(rk).data[right_index]
        )
        keep = equal if keep is None else (keep & equal)
    if keep is not None:
        left_index = left_index[keep]
        right_index = right_index[keep]
    return left_index, right_index
