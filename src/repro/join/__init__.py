"""Join operators built on the sort: merge join and inequality joins."""

from repro.join.iejoin import Predicate, ie_join, inequality_join
from repro.join.merge_join import merge_join

__all__ = ["Predicate", "ie_join", "inequality_join", "merge_join"]
