"""Inequality joins over sorted data (Khayyat et al., cited as [8]).

The paper repeatedly names inequality joins as a sorting consumer: they
"iterate sequentially over sorted runs and compare tuples", and their
performance rests on the sort operator this library builds.  Two
algorithms are provided:

* :func:`inequality_join` -- one predicate (``l.x < r.y`` etc.): sort the
  right side and binary-search each left value's matching range
  (vectorized with ``searchsorted``), O(n log n + output).
* :func:`ie_join` -- two predicates (the IEJoin setting, e.g.
  ``l.dur > r.dur AND l.rev < r.rev``): the published IEJoin structure --
  sort both sides by the first attribute, build the permutation between
  the two sort orders, and sweep a bitmap so each probe only scans
  positions already known to satisfy predicate one.

Both are property-tested against a brute-force nested loop.

NULL values never satisfy an inequality (SQL semantics), so rows with
NULL in a predicate column are dropped up front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SortError
from repro.table.table import Table
from repro.types.schema import ColumnDef, Schema

__all__ = ["Predicate", "inequality_join", "ie_join"]

_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class Predicate:
    """One inequality ``left_column OP right_column``."""

    left_column: str
    op: str
    right_column: str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SortError(f"op must be one of {_OPS}, got {self.op!r}")

    @classmethod
    def parse(cls, text: str) -> "Predicate":
        """Parse ``"l_col < r_col"`` style text."""
        for op in ("<=", ">=", "<", ">"):
            if op in text:
                left, right = text.split(op, 1)
                return cls(left.strip(), op, right.strip())
        raise SortError(f"no inequality operator in {text!r}")


def _valid_values(table: Table, column: str) -> tuple[np.ndarray, np.ndarray]:
    """(row indices, values) of the non-NULL entries of a numeric column."""
    col = table.column(column)
    if col.dtype.is_variable_width:
        raise SortError("inequality joins support fixed-width columns only")
    index = np.flatnonzero(col.validity).astype(np.int64)
    return index, col.data[index]


def _join_output(
    left: Table,
    right: Table,
    left_index: np.ndarray,
    right_index: np.ndarray,
    left_prefix: str,
    right_prefix: str,
) -> Table:
    left_rows = left.take(left_index)
    right_rows = right.take(right_index)
    names = []
    for column in left.schema.names:
        names.append(
            f"{left_prefix}{column}" if column in right.schema else column
        )
    for column in right.schema.names:
        names.append(
            f"{right_prefix}{column}" if column in left.schema else column
        )
    columns = list(left_rows.columns) + list(right_rows.columns)
    defs = tuple(
        ColumnDef(name, col.dtype) for name, col in zip(names, columns)
    )
    return Table(Schema(defs), columns)


def inequality_join(
    left: Table,
    right: Table,
    predicate: Predicate | str,
    left_prefix: str = "l_",
    right_prefix: str = "r_",
) -> Table:
    """Join on a single inequality predicate via sort + binary search."""
    if isinstance(predicate, str):
        predicate = Predicate.parse(predicate)
    left_idx, left_values = _valid_values(left, predicate.left_column)
    right_idx, right_values = _valid_values(right, predicate.right_column)

    order = np.argsort(right_values, kind="stable")
    sorted_values = right_values[order]
    sorted_right_idx = right_idx[order]

    out_left: list[np.ndarray] = []
    out_right: list[np.ndarray] = []
    # For each left value, the matching right rows form a suffix or
    # prefix of the sorted right side.
    if predicate.op in ("<", "<="):
        side = "right" if predicate.op == "<" else "left"
        starts = np.searchsorted(sorted_values, left_values, side=side)
        for i, start in enumerate(starts):
            count = len(sorted_values) - int(start)
            if count:
                out_left.append(np.full(count, left_idx[i], dtype=np.int64))
                out_right.append(sorted_right_idx[int(start):])
    else:
        side = "left" if predicate.op == ">" else "right"
        stops = np.searchsorted(sorted_values, left_values, side=side)
        for i, stop in enumerate(stops):
            if int(stop):
                out_left.append(
                    np.full(int(stop), left_idx[i], dtype=np.int64)
                )
                out_right.append(sorted_right_idx[: int(stop)])

    left_out = (
        np.concatenate(out_left) if out_left else np.zeros(0, dtype=np.int64)
    )
    right_out = (
        np.concatenate(out_right) if out_right else np.zeros(0, dtype=np.int64)
    )
    return _join_output(
        left, right, left_out, right_out, left_prefix, right_prefix
    )


def ie_join(
    left: Table,
    right: Table,
    predicate1: Predicate | str,
    predicate2: Predicate | str,
    left_prefix: str = "l_",
    right_prefix: str = "r_",
) -> Table:
    """Join on the conjunction of two inequality predicates (IEJoin).

    The algorithm of Khayyat et al.: sort both relations by the first
    predicate's attributes, compute for each left row the range of right
    rows satisfying predicate one, then visit left rows in the second
    predicate's order while maintaining a bitmap of right rows already
    known to satisfy predicate two -- every set bit inside the range is a
    result.  Runs in O(n log n + output) with two sorts, one permutation,
    and one bitmap sweep.
    """
    if isinstance(predicate1, str):
        predicate1 = Predicate.parse(predicate1)
    if isinstance(predicate2, str):
        predicate2 = Predicate.parse(predicate2)

    left_idx1, left_v1 = _valid_values(left, predicate1.left_column)
    left_valid2 = left.column(predicate2.left_column).validity[left_idx1]
    left_idx = left_idx1[left_valid2]
    left_v1 = left_v1[left_valid2]
    left_v2 = left.column(predicate2.left_column).data[left_idx]

    right_idx1, right_v1 = _valid_values(right, predicate1.right_column)
    right_valid2 = right.column(predicate2.right_column).validity[right_idx1]
    right_idx = right_idx1[right_valid2]
    right_v1 = right_v1[right_valid2]
    right_v2 = right.column(predicate2.right_column).data[right_idx]

    n_right = len(right_idx)
    out_left: list[np.ndarray] = []
    out_right: list[np.ndarray] = []
    if n_right and len(left_idx):
        # Sort right by predicate-1 attribute; each left row's predicate-1
        # matches form a contiguous range in this order.
        r_order1 = np.argsort(right_v1, kind="stable")
        r_v1_sorted = right_v1[r_order1]

        if predicate1.op in ("<", "<="):
            side = "right" if predicate1.op == "<" else "left"
            range_start = np.searchsorted(r_v1_sorted, left_v1, side=side)
            range_is_suffix = True
        else:
            side = "left" if predicate1.op == ">" else "right"
            range_start = np.searchsorted(r_v1_sorted, left_v1, side=side)
            range_is_suffix = False

        # Visit left rows in predicate-2 order; activate right rows whose
        # predicate-2 attribute has already been passed, so membership in
        # the bitmap encodes predicate two.
        strict2 = predicate2.op in ("<", ">")
        descending2 = predicate2.op in ("<", "<=")
        # For l.y < r.y we need right rows with y > l.y: process left in
        # DESCENDING y order and activate right rows in descending order.
        l_order2 = np.argsort(left_v2, kind="stable")
        r_order2 = np.argsort(right_v2[r_order1], kind="stable")
        if descending2:
            l_order2 = l_order2[::-1]
            r_order2 = r_order2[::-1]
        r_v2_in_order1 = right_v2[r_order1]

        bitmap = np.zeros(n_right, dtype=bool)
        cursor = 0
        for l_position in l_order2:
            lv2 = left_v2[l_position]
            # Activate all right rows strictly/weakly beyond lv2.
            while cursor < n_right:
                candidate = r_order2[cursor]
                rv2 = r_v2_in_order1[candidate]
                if descending2:
                    passes = rv2 > lv2 if strict2 else rv2 >= lv2
                else:
                    passes = rv2 < lv2 if strict2 else rv2 <= lv2
                if not passes:
                    break
                bitmap[candidate] = True
                cursor += 1
            start = int(range_start[l_position])
            window = (
                bitmap[start:] if range_is_suffix else bitmap[:start]
            )
            if not window.any():
                continue
            positions = np.flatnonzero(window)
            if range_is_suffix:
                positions = positions + start
            matches = right_idx[r_order1[positions]]
            out_left.append(
                np.full(len(matches), left_idx[l_position], dtype=np.int64)
            )
            out_right.append(matches)

    left_out = (
        np.concatenate(out_left) if out_left else np.zeros(0, dtype=np.int64)
    )
    right_out = (
        np.concatenate(out_right) if out_right else np.zeros(0, dtype=np.int64)
    )
    return _join_output(
        left, right, left_out, right_out, left_prefix, right_prefix
    )
