"""Window functions over sorted partitions."""

from repro.window.functions import WindowFunction, WindowSpec, window

__all__ = ["WindowFunction", "WindowSpec", "window"]
