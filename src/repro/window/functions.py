"""Window functions over the sort operator.

The paper opens with "The ORDER BY and WINDOW operators explicitly invoke
sorting"; this module is the WINDOW half.  A window computation sorts the
input by (PARTITION BY keys, ORDER BY keys) with the normalized-key sort
operator, detects partition boundaries on the partition-key prefix of the
normalized keys, and evaluates the requested functions per partition with
vectorized numpy.

Supported functions: ``row_number``, ``rank``, ``dense_rank``,
``lag``/``lead`` (offset 1 over any column), ``running_count``, and
``running_sum`` over a numeric column.

The result is the sorted table plus one appended column per requested
function (window semantics over the sorted frame; callers needing the
original row order can carry a position column through).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.operator import SortConfig, sort_table
from repro.sort.stringsort import exact_group_changed
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import BIGINT, DOUBLE
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortKey, SortSpec

__all__ = ["WindowFunction", "WindowSpec", "window"]

_FUNCTIONS = (
    "row_number",
    "rank",
    "dense_rank",
    "lag",
    "lead",
    "running_count",
    "running_sum",
)


@dataclass(frozen=True)
class WindowFunction:
    """One requested window computation.

    Attributes:
        name: one of the supported function names.
        column: argument column (required by lag/lead/running_sum).
        output: output column name (defaults to a derived name).
    """

    name: str
    column: str | None = None
    output: str | None = None

    def __post_init__(self) -> None:
        if self.name not in _FUNCTIONS:
            raise SortError(
                f"unknown window function {self.name!r}; "
                f"supported: {_FUNCTIONS}"
            )
        if self.name in ("lag", "lead", "running_sum") and self.column is None:
            raise SortError(f"{self.name} needs an argument column")

    @property
    def output_name(self) -> str:
        if self.output:
            return self.output
        if self.column:
            return f"{self.name}_{self.column}"
        return self.name


@dataclass(frozen=True)
class WindowSpec:
    """PARTITION BY / ORDER BY of a window clause."""

    partition_by: tuple[str, ...] = ()
    order_by: tuple[SortKey, ...] = ()

    @classmethod
    def of(cls, partition_by: Sequence[str] = (), order_by: Sequence[str] = ()):
        return cls(
            tuple(partition_by),
            tuple(SortKey.parse(k) for k in order_by),
        )

    def sort_spec(self) -> SortSpec:
        keys = tuple(SortKey(c) for c in self.partition_by) + self.order_by
        if not keys:
            raise SortError("window needs PARTITION BY and/or ORDER BY keys")
        return SortSpec(keys)


def _partition_ids(sorted_table: Table, spec: WindowSpec) -> np.ndarray:
    """0-based partition ordinal of each row of the sorted table."""
    n = sorted_table.num_rows
    if not spec.partition_by or n == 0:
        return np.zeros(n, dtype=np.int64)
    part_spec = SortSpec(tuple(SortKey(c) for c in spec.partition_by))
    keys = normalize_keys(
        sorted_table, part_spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )
    # exact_group_changed patches truncated VARCHAR prefixes with the
    # original values, so long partition keys never fuse two partitions.
    changed = exact_group_changed(sorted_table, keys)
    return np.concatenate(([0], np.cumsum(changed))).astype(np.int64)


def _order_ids(sorted_table: Table, spec: WindowSpec) -> np.ndarray:
    """Group ordinal of equal ORDER BY values (for rank/dense_rank)."""
    n = sorted_table.num_rows
    if not spec.order_by or n == 0:
        return np.zeros(n, dtype=np.int64)
    order_spec = SortSpec(spec.order_by)
    keys = normalize_keys(
        sorted_table, order_spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )
    changed = exact_group_changed(sorted_table, keys)
    return np.concatenate(([0], np.cumsum(changed))).astype(np.int64)


def window(
    table: Table,
    spec: WindowSpec,
    functions: Sequence[WindowFunction],
    config: SortConfig | None = None,
    presorted: bool = False,
) -> Table:
    """Evaluate window functions; returns the sorted table + new columns.

    ``presorted`` asserts the input already arrives sorted by the
    window's (PARTITION BY, ORDER BY) sort spec, so the internal sort
    is skipped -- the order-propagation fast path.  Results are
    byte-identical either way (the sort is stable, and a stable sort of
    sorted input is the identity).
    """
    if not functions:
        raise SortError("no window functions requested")
    names = {f.output_name for f in functions}
    if len(names) != len(functions):
        raise SortError("window output names collide")
    for f in functions:
        if f.column is not None:
            table.schema.column(f.column)
        if f.output_name in table.schema:
            raise SortError(
                f"output column {f.output_name!r} already exists"
            )

    if presorted:
        spec.sort_spec()  # still validates the spec is non-empty
        sorted_table = table
    else:
        sorted_table = sort_table(table, spec.sort_spec(), config)
    n = sorted_table.num_rows
    partitions = _partition_ids(sorted_table, spec)

    # Per-row position within its partition, vectorized: global index
    # minus the first index of the row's partition.
    first_of_partition = np.zeros(n, dtype=np.int64)
    if n:
        starts = np.flatnonzero(
            np.concatenate(([True], partitions[1:] != partitions[:-1]))
        )
        first_of_partition = starts[
            np.searchsorted(starts, np.arange(n), side="right") - 1
        ]
    position = np.arange(n, dtype=np.int64) - first_of_partition

    columns = list(sorted_table.columns)
    defs = list(sorted_table.schema.columns)
    order_groups = None
    for f in functions:
        if f.name == "row_number":
            data = position + 1
            new = ColumnVector(BIGINT, data.astype(np.int64))
        elif f.name in ("rank", "dense_rank"):
            if order_groups is None:
                order_groups = _order_ids(sorted_table, spec)
            new = _rank_column(
                partitions, position, order_groups, dense=f.name == "dense_rank"
            )
        elif f.name in ("lag", "lead"):
            new = _shift_column(
                sorted_table.column(f.column), partitions, f.name == "lead"
            )
        elif f.name == "running_count":
            new = ColumnVector(BIGINT, (position + 1).astype(np.int64))
        else:  # running_sum
            new = _running_sum(sorted_table.column(f.column), partitions)
        columns.append(new)
        defs.append(ColumnDef(f.output_name, new.dtype))
    return Table(Schema(tuple(defs)), columns)


def _rank_column(
    partitions: np.ndarray,
    position: np.ndarray,
    order_groups: np.ndarray,
    dense: bool,
) -> ColumnVector:
    n = len(partitions)
    ranks = np.ones(n, dtype=np.int64)
    if n:
        new_group = np.concatenate(
            ([True], (order_groups[1:] != order_groups[:-1])
             | (partitions[1:] != partitions[:-1]))
        )
        if dense:
            # Count of distinct order groups so far within the partition.
            group_ordinal = np.cumsum(new_group)
            first = np.zeros(n, dtype=np.int64)
            starts = np.flatnonzero(
                np.concatenate(([True], partitions[1:] != partitions[:-1]))
            )
            first = starts[
                np.searchsorted(starts, np.arange(n), side="right") - 1
            ]
            ranks = group_ordinal - group_ordinal[first] + 1
        else:
            # rank = position of the first row of the tie group + 1.
            group_start = np.where(new_group, np.arange(n), 0)
            group_start = np.maximum.accumulate(group_start)
            ranks = position - (np.arange(n) - group_start) + 1
    return ColumnVector(BIGINT, ranks.astype(np.int64))


def _shift_column(
    column: ColumnVector, partitions: np.ndarray, lead: bool
) -> ColumnVector:
    n = len(column)
    data = np.empty_like(column.data)
    validity = np.zeros(n, dtype=bool)
    if n:
        if lead:
            data[:-1] = column.data[1:]
            validity[:-1] = column.validity[1:]
            same = np.concatenate((partitions[1:] == partitions[:-1], [False]))
        else:
            data[1:] = column.data[:-1]
            validity[1:] = column.validity[:-1]
            same = np.concatenate(([False], partitions[1:] == partitions[:-1]))
        validity &= same
        if column.dtype.is_variable_width:
            data[~validity] = ""
        else:
            data[~validity] = 0
    return ColumnVector(column.dtype, data, validity)


def _running_sum(column: ColumnVector, partitions: np.ndarray) -> ColumnVector:
    if column.dtype.is_variable_width:
        raise SortError("running_sum needs a numeric column")
    values = np.where(column.validity, column.data, 0).astype(np.float64)
    cumulative = np.cumsum(values)
    n = len(values)
    if n:
        starts = np.flatnonzero(
            np.concatenate(([True], partitions[1:] != partitions[:-1]))
        )
        first = starts[np.searchsorted(starts, np.arange(n), side="right") - 1]
        base = np.where(first > 0, cumulative[first - 1], 0.0)
        cumulative = cumulative - base
    return ColumnVector(DOUBLE, cumulative)
