"""Registry of the five benchmarked systems (paper, Section VII)."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.systems.base import SystemModel
from repro.systems.clickhouse_model import ClickHouseModel
from repro.systems.compiled_row import HyPerModel, UmbraModel
from repro.systems.duckdb_model import DuckDBModel
from repro.systems.monetdb_model import MonetDBModel
from repro.systems.profile import HardwareProfile

__all__ = ["SYSTEM_NAMES", "make_system", "all_systems"]

_SYSTEMS = {
    "DuckDB": DuckDBModel,
    "ClickHouse": ClickHouseModel,
    "MonetDB": MonetDBModel,
    "HyPer": HyPerModel,
    "Umbra": UmbraModel,
}

SYSTEM_NAMES = tuple(_SYSTEMS)


def make_system(name: str, profile: HardwareProfile | None = None) -> SystemModel:
    """Instantiate one system model by name."""
    try:
        cls = _SYSTEMS[name]
    except KeyError:
        raise SimulationError(
            f"unknown system {name!r}; have {sorted(_SYSTEMS)}"
        ) from None
    return cls(profile)


def all_systems(profile: HardwareProfile | None = None) -> list[SystemModel]:
    """All five models over one shared hardware profile."""
    return [make_system(name, profile) for name in SYSTEM_NAMES]
