"""Base machinery for the five system models of Section VII.

Each model composes the same architectural ingredients the paper
attributes to its system -- data format (DSM/NSM), run-generation
algorithm, comparator binding, merge strategy, parallelism -- into a
phase-by-phase cost model over a shared :class:`HardwareProfile`.  The
differences between models are therefore exactly the architectural
differences the paper studies, which is the point of its own
"apples-to-apples" methodology.

Costs are in model cycles; :meth:`SystemModel.benchmark_query` converts to
seconds at the profile's nominal clock.  Every model can also *execute*
the sort for real (they all share the reference semantics), which the
tests use to confirm the models describe the same relational operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.parallel import PhaseModel
from repro.errors import SimulationError
from repro.sort.operator import sort_table
from repro.table.table import Table
from repro.types.datatypes import TypeId
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec
from repro.systems.profile import (
    ComparisonProfile,
    HardwareProfile,
    comparison_profile,
    sort_comparisons,
)

__all__ = ["WorkloadFacts", "SystemRun", "SystemModel"]


@dataclass(frozen=True)
class WorkloadFacts:
    """Everything a model needs to know about one sort workload."""

    num_rows: int
    spec: SortSpec
    key_widths: tuple[int, ...]  # encoded value bytes per key column
    key_is_string: tuple[bool, ...]
    key_is_float: tuple[bool, ...]
    avg_string_bytes: float  # average length of string key values
    string_prefix_tie_probability: float  # P(12-byte prefixes tie)
    string_prefix4_tie_probability: float  # P(4-byte inline prefixes tie)
    payload_bytes: int  # bytes of selected payload per row
    comparisons: ComparisonProfile

    @property
    def num_keys(self) -> int:
        return len(self.key_widths)

    @property
    def fixed_key_bytes(self) -> int:
        return sum(self.key_widths)

    @property
    def has_string_key(self) -> bool:
        return any(self.key_is_string)

    @property
    def has_float_key(self) -> bool:
        return any(self.key_is_float)


def _column_width(schema: Schema, name: str) -> int:
    dtype = schema.column(name).dtype
    if dtype.is_variable_width:
        return 12  # DuckDB's maximum normalized-key string prefix
    return dtype.fixed_width


def gather_facts(
    table: Table, spec: SortSpec, payload_columns: tuple[str, ...]
) -> WorkloadFacts:
    """Measure the workload-dependent quantities from the actual data."""
    schema = table.schema
    widths = []
    is_string = []
    is_float = []
    total_string = 0.0
    string_values = 0
    prefix_tie = 0.0
    prefix4_tie = 0.0
    for key in spec.keys:
        dtype = schema.column(key.column).dtype
        stringy = dtype.type_id is TypeId.VARCHAR
        is_string.append(stringy)
        is_float.append(dtype.is_float)
        widths.append(_column_width(schema, key.column))
        if stringy and table.num_rows:
            data = table.column(key.column).data
            lengths = np.array([len(str(v)) for v in data])
            total_string += float(lengths.sum())
            string_values += len(lengths)
            strings = data.astype(str)
            unique_full = len(np.unique(strings))
            if unique_full:
                # Fraction of distinctions each prefix length cannot make.
                unique12 = len(np.unique(np.array([s_[:12] for s_ in strings])))
                unique4 = len(np.unique(np.array([s_[:4] for s_ in strings])))
                prefix_tie = max(prefix_tie, 1.0 - unique12 / unique_full)
                prefix4_tie = max(prefix4_tie, 1.0 - unique4 / unique_full)
    payload_bytes = 0
    for name in payload_columns:
        dtype = schema.column(name).dtype
        if dtype.is_variable_width:
            data = table.column(name).data
            if table.num_rows:
                payload_bytes += int(
                    np.mean([len(str(v)) for v in data])
                ) + 8
            else:
                payload_bytes += 8
        else:
            payload_bytes += dtype.fixed_width
    avg_string = total_string / string_values if string_values else 0.0
    return WorkloadFacts(
        num_rows=table.num_rows,
        spec=spec,
        key_widths=tuple(widths),
        key_is_string=tuple(is_string),
        key_is_float=tuple(is_float),
        avg_string_bytes=avg_string,
        string_prefix_tie_probability=prefix_tie,
        string_prefix4_tie_probability=prefix4_tie,
        payload_bytes=payload_bytes,
        comparisons=comparison_profile(table, spec),
    )


@dataclass
class SystemRun:
    """Modelled end-to-end outcome of one benchmark query on one system."""

    system: str
    cycles: float
    seconds: float
    phases: list[tuple[str, float]] = field(default_factory=list)

    def phase_seconds(self, profile: HardwareProfile) -> dict[str, float]:
        return {name: profile.seconds(c) for name, c in self.phases}


class SystemModel:
    """Base class: shared phase helpers + the public benchmark entry."""

    name = "abstract"
    parallel = True

    def __init__(self, profile: HardwareProfile | None = None) -> None:
        self.profile = profile or HardwareProfile()

    # -- public API ------------------------------------------------------- #

    def benchmark_query(
        self,
        table: Table,
        spec: SortSpec,
        payload_columns: tuple[str, ...] | None = None,
    ) -> SystemRun:
        """Model the paper's count-over-sorted-subquery benchmark."""
        if payload_columns is None:
            payload_columns = tuple(
                n for n in table.schema.names if n not in spec.column_names
            )
        facts = gather_facts(table, spec, payload_columns)
        model = self.sort_phases(table, facts)
        # Scan + count(*) are the cheap bracketing operators of the
        # benchmark query: one streaming pass each.
        scan = self.profile.stream_cost(
            facts.num_rows * (facts.fixed_key_bytes + facts.payload_bytes)
        )
        threads = self.threads
        model.sequential("scan", scan / threads)
        cycles = model.total
        return SystemRun(
            system=self.name,
            cycles=cycles,
            seconds=self.profile.seconds(cycles),
            phases=list(model.phases),
        )

    def execute(self, table: Table, spec: SortSpec) -> Table:
        """Actually perform the sort (shared reference semantics)."""
        return sort_table(table, spec)

    # -- to be provided by each system ------------------------------------- #

    def sort_phases(self, table: Table, facts: WorkloadFacts) -> PhaseModel:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------- #

    @property
    def threads(self) -> int:
        return self.profile.threads if self.parallel else 1

    def run_sizes(self, n: int) -> list[int]:
        """Thread-local run sizes: one run per thread (paper, Section II)."""
        threads = self.threads
        base = n // threads
        sizes = [base] * threads
        for i in range(n - base * threads):
            sizes[i] += 1
        return [s for s in sizes if s > 0] or [n]

    def run_generation_comparisons(self, n: int) -> float:
        """Total comparisons across all thread-local run sorts."""
        return sum(sort_comparisons(s) for s in self.run_sizes(n))

    def merge_comparisons(self, n: int) -> float:
        runs = len(self.run_sizes(n))
        if runs <= 1:
            return 0.0
        return n * math.log2(runs)

    def float_penalty(self, facts: WorkloadFacts) -> float:
        """Extra cycles per value comparison when float keys are compared.

        Comparing IEEE floats costs more than integers (latency + NaN/order
        handling); systems that compare *values* pay it, systems that
        compare normalized key bytes (DuckDB) do not.
        """
        return 2.0 if facts.has_float_key else 0.0

    def outcome_branch_cost(self) -> float:
        """Mispredict share of a comparison sort's result branch (~50%)."""
        return 0.5 * self.profile.branch_miss_cost

    def rowsort_fill_cost(
        self, working_set_bytes: float, element_bytes: float, n: int
    ) -> float:
        """Amortized cache-fill cycles per element access in a *row* sort.

        Quicksort over physically moving rows streams the data once per
        recursion level; only the levels whose partition still exceeds a
        cache level miss it, and each element then costs one line-fill
        share.  Amortized over the ~log2(n) levels this is small -- which
        is exactly why sorting rows incurs an order of magnitude fewer
        cache misses than sorting a columnar format (paper, Tables II/III).

        Columnar sorts do NOT get this discount: they permute indices, the
        data never moves, and accesses stay random at every level (use
        :meth:`HardwareProfile.random_access_cost` there).
        """
        if n <= 1 or working_set_bytes <= 0:
            return 0.0
        profile = self.profile
        levels = max(1.0, math.log2(n))

        def out_levels(capacity: int) -> float:
            if working_set_bytes <= capacity:
                return 0.0
            return math.log2(working_set_bytes / capacity)

        line_share = element_bytes / profile.line_bytes
        fill = line_share * (
            out_levels(profile.l1_bytes) * (profile.l2_cost - profile.hit_cost)
            + out_levels(profile.l2_bytes) * (profile.l3_cost - profile.l2_cost)
            + out_levels(profile.l3_bytes) * (profile.mem_cost - profile.l3_cost)
        )
        return fill / levels
