"""Model of DuckDB's sort: the paper's own implementation (Figure 11).

Architecture modelled, per Section VII:

* morsel-parallel ingest converting vectors to two 8-byte-aligned row
  formats: normalized keys (with row id) and payload rows;
* thread-local run generation with radix sort, or pdqsort + memcmp when a
  key column is a string (prefix ties re-compare the full string);
* cascaded 2-way merge parallelized with Merge Path, comparing whole keys
  with memcmp, physically moving key and payload rows each round;
* final conversion back to vectors.

Radix work (passes actually executed, skip-copy savings, rows moved) is
*measured* by running the production radix sort of :mod:`repro.sort.radix`
on the workload's real normalized keys, then costed per element.
"""

from __future__ import annotations

import math

from repro.engine.parallel import PhaseModel, merge_tree_makespan
from repro.keys.normalizer import normalize_keys
from repro.sort.radix import RadixStats, radix_argsort
from repro.systems.base import SystemModel, WorkloadFacts
from repro.table.table import Table

__all__ = ["DuckDBModel"]


class DuckDBModel(SystemModel):
    name = "DuckDB"
    parallel = True

    def normalized_key_width(self, facts: WorkloadFacts) -> int:
        # One NULL byte + encoded value per key column, plus an 8-byte
        # row id, padded to 8-byte alignment.
        width = sum(1 + w for w in facts.key_widths) + 8
        return (width + 7) // 8 * 8

    def sort_phases(self, table: Table, facts: WorkloadFacts) -> PhaseModel:
        profile = self.profile
        model = PhaseModel(self.threads)
        n = facts.num_rows
        if n == 0:
            return model
        key_width = self.normalized_key_width(facts)
        payload_width = max(8, (facts.payload_bytes + 7) // 8 * 8)
        run_sizes = self.run_sizes(n)

        # Phase 1: convert vectors to row formats (key normalization +
        # payload row-ification), block-at-a-time and cache-resident.
        convert_costs = [
            profile.stream_cost(size * (facts.fixed_key_bytes + facts.payload_bytes))
            + profile.stream_cost(size * (key_width + payload_width))
            for size in run_sizes
        ]
        model.phase("materialize", convert_costs)

        # Phase 2: thread-local run sorts.
        if facts.has_string_key:
            sort_costs = [
                self._pdq_cost(size, key_width, facts) for size in run_sizes
            ]
        else:
            stats = self._measure_radix(table, facts)
            sort_costs = [
                self._radix_cost(size, n, key_width, stats)
                for size in run_sizes
            ]
        model.phase("run-sort", sort_costs)

        # Reorder the payload of each run into key order.
        reorder_costs = [
            size
            * (
                profile.random_access_cost(size * payload_width)
                + payload_width / 4.0
            )
            for size in run_sizes
        ]
        model.phase("payload-reorder", reorder_costs)

        # Phase 3: cascaded Merge-Path merge; every round streams all keys
        # and payload once and does one memcmp per output element.
        words = max(1, math.ceil(key_width / 8))
        per_element = (
            2 * words * profile.hit_cost  # sequential memcmp loads
            + profile.stream_cost(key_width + payload_width)
            + 0.25 * profile.branch_miss_cost  # merge take-side branch
        )
        merge = merge_tree_makespan(
            run_sizes, self.threads, per_element, merge_path=True
        )
        model.sequential("merge", merge)

        # Phase 4: convert the final run back to vectors.
        model.sequential(
            "output",
            profile.stream_cost(n * payload_width) / self.threads,
        )
        return model

    # -- run-sort variants --------------------------------------------------- #

    MEASURE_SAMPLE = 1 << 17

    def _measure_radix(self, table: Table, facts: WorkloadFacts) -> RadixStats:
        """Run the real radix sort on the real keys to count its work.

        Only the key bytes are radix-sorted (radix is stable; the row-id
        suffix is merge-time metadata).  Very large workloads are measured
        on a uniform row sample and the movement counts scaled back up.
        """
        n = table.num_rows
        sample = table
        scale = 1.0
        if n > self.MEASURE_SAMPLE:
            step = n // self.MEASURE_SAMPLE
            import numpy as np

            indices = np.arange(0, n, step)[: self.MEASURE_SAMPLE]
            sample = table.take(indices)
            scale = n / len(indices)
        keys = normalize_keys(sample, facts.spec, include_row_id=False)
        stats = RadixStats()
        radix_argsort(keys.matrix, stats)
        if scale != 1.0:
            stats.rows_moved = int(stats.rows_moved * scale)
            stats.insertion_sorted_buckets = int(
                stats.insertion_sorted_buckets * scale
            )
        return stats

    def _radix_cost(
        self, run_size: int, total_rows: int, key_width: int, stats: RadixStats
    ) -> float:
        """Cost of radix-sorting one run, scaled from measured global work."""
        profile = self.profile
        share = run_size / total_rows if total_rows else 0.0
        moved = stats.rows_moved * share
        # A counting-sort scatter writes into at most 256 bucket streams;
        # write-combining makes each stream near-sequential, so the cost
        # per moved row is the key copy plus a line-churn term (radix's
        # cache behaviour is worse than a row quicksort's -- Figure 10 --
        # but far from fully random).
        scatter = moved * (
            profile.stream_cost(2 * key_width) + profile.l2_cost / 4.0
        )
        # Each executed pass reads every in-range byte twice (histogram +
        # scatter) and updates the cache-resident count array.
        counting = 2 * moved * 1.5
        insertion = stats.insertion_sorted_buckets * share * 24 * 8.0
        return scatter + counting + insertion

    def _pdq_cost(
        self, run_size: int, key_width: int, facts: WorkloadFacts
    ) -> float:
        """pdqsort with dynamic memcmp over normalized keys (strings)."""
        profile = self.profile
        from repro.systems.profile import sort_comparisons

        comparisons = sort_comparisons(run_size)
        probabilities = facts.comparisons.examine_probability
        # Bytes examined per memcmp: NULL byte + value of each column that
        # is expected to be reached, in 8-byte words.
        expected_bytes = sum(
            p * (1 + w)
            for p, w in zip(probabilities, facts.key_widths)
        )
        words = max(1.0, expected_bytes / 8.0)
        # Keys physically move during pdqsort, so loads amortize to cached
        # word compares plus the per-level fill share (see rowsort_fill_cost).
        fill = self.rowsort_fill_cost(
            run_size * key_width, key_width, run_size
        )
        per_comparison = (
            2 * words * profile.hit_cost
            + 2 * fill
            + 3.0
            + self.outcome_branch_cost()
        )
        # Prefix ties fall back to comparing the full strings.
        tie_p = facts.string_prefix_tie_probability
        if tie_p > 0:
            per_comparison += tie_p * (
                2 * profile.random_access_cost(run_size * 32)
                + 2 * facts.avg_string_bytes / 8.0
            )
        swaps = 0.3 * comparisons
        move = 3 * profile.stream_cost(key_width)
        return comparisons * per_comparison + swaps * move
