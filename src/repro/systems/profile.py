"""Hardware profile and cost primitives shared by the system models.

The end-to-end comparisons (Figures 12-14) run at scales where the
cycle-accurate simulator of :mod:`repro.sim` would be too slow, so the
system models in this package use a coarser, *data-driven analytic* model
built from the same mechanisms the micro-simulator validates:

* random accesses cost more once the working set outgrows the caches
  (:meth:`HardwareProfile.random_access_cost`);
* streaming passes cost a miss per cache line
  (:meth:`HardwareProfile.stream_cost`);
* unpredictable data-dependent branches cost a misprediction share;
* dynamic calls / interpretation steps cost a fixed overhead.

Workload-dependent quantities -- how many key columns a comparison is
expected to examine, how likely tie branches are -- are derived from the
*actual data* being sorted (distinct-prefix counts), not assumed.  See
``comparison_profile``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.keys.normalizer import normalize_keys
from repro.table.table import Table
from repro.types.sortspec import SortSpec

__all__ = [
    "HardwareProfile",
    "ComparisonProfile",
    "comparison_profile",
    "sort_comparisons",
]


@dataclass(frozen=True)
class HardwareProfile:
    """Per-core cache/penalty model matching the paper's m5d instances."""

    l1_bytes: int = 32 * 1024
    l2_bytes: int = 1024 * 1024
    l3_bytes: int = 32 * 1024 * 1024
    line_bytes: int = 64
    hit_cost: float = 1.0
    l2_cost: float = 12.0
    l3_cost: float = 40.0
    mem_cost: float = 120.0
    branch_miss_cost: float = 15.0
    call_cost: float = 25.0
    threads: int = 16
    frequency_hz: float = 3.1e9  # m5d Xeon 8259CL boost-ish clock

    def scaled(self, factor: int) -> "HardwareProfile":
        """Cache capacities divided by ``factor``; penalties unchanged.

        The end-to-end benchmarks run workloads scaled down ``factor``x
        from the paper's row counts; shrinking the modelled caches by the
        same factor preserves every working-set-to-capacity ratio, and
        with it where each system starts falling out of cache.
        """
        if factor <= 0:
            raise SimulationError("scale factor must be positive")
        return HardwareProfile(
            l1_bytes=max(64, self.l1_bytes // factor),
            l2_bytes=max(256, self.l2_bytes // factor),
            l3_bytes=max(1024, self.l3_bytes // factor),
            line_bytes=self.line_bytes,
            hit_cost=self.hit_cost,
            l2_cost=self.l2_cost,
            l3_cost=self.l3_cost,
            mem_cost=self.mem_cost,
            branch_miss_cost=self.branch_miss_cost,
            call_cost=self.call_cost,
            threads=self.threads,
            frequency_hz=self.frequency_hz,
        )

    def random_access_cost(self, working_set_bytes: float) -> float:
        """Expected cycles of one random load into a working set.

        The probability that a random access misses a cache of capacity C
        within a working set W is approximately max(0, 1 - C/W); the cost
        blends the hierarchy levels with those probabilities.
        """
        if working_set_bytes <= 0:
            raise SimulationError("working set must be positive")

        def miss_probability(capacity: int) -> float:
            return max(0.0, 1.0 - capacity / working_set_bytes)

        p_l1 = miss_probability(self.l1_bytes)
        p_l2 = miss_probability(self.l2_bytes)
        p_l3 = miss_probability(self.l3_bytes)
        cost = self.hit_cost
        cost += p_l1 * (self.l2_cost - self.hit_cost)
        cost += p_l2 * (self.l3_cost - self.l2_cost)
        cost += p_l3 * (self.mem_cost - self.l3_cost)
        return cost

    def stream_cost(self, num_bytes: float) -> float:
        """Cycles to stream ``num_bytes`` sequentially (miss per line)."""
        if num_bytes < 0:
            raise SimulationError("byte count cannot be negative")
        lines = num_bytes / self.line_bytes
        # Hardware prefetching hides most of the latency; charge half an
        # L2 fill per line plus one cycle per 4 bytes touched.
        return lines * (self.l2_cost / 2.0) + num_bytes / 4.0

    def seconds(self, cycles: float) -> float:
        """Convert model cycles to wall-clock seconds at the nominal clock."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class ComparisonProfile:
    """Data-driven facts about comparing tuples of one workload.

    Attributes:
        examine_probability: ``p[c]`` = probability a comparison during a
            sort examines key column ``c`` (``p[0]`` is always 1).
        tie_branch_unpredictability: expected mispredicted tie branches per
            comparison for a branchy multi-column comparator.
        distinct_prefix: distinct count of the first ``c+1`` key columns.
    """

    examine_probability: tuple[float, ...]
    tie_branch_unpredictability: float
    distinct_prefix: tuple[int, ...]

    @property
    def expected_columns(self) -> float:
        return float(sum(self.examine_probability))


def _pack_u64_columns(matrix: np.ndarray) -> np.ndarray:
    """Pack an (n, w) uint8 matrix into (n, ceil(w/8)) big-endian uint64.

    Lexicographic order over the packed columns equals byte order over the
    original rows, which lets distinct-prefix counting use a fast
    ``np.lexsort`` instead of a row-wise unique.
    """
    n, width = matrix.shape
    padded_width = (width + 7) // 8 * 8
    padded = np.zeros((n, padded_width), dtype=np.uint8)
    padded[:, :width] = matrix
    return padded.view(">u8").astype(np.uint64)


def _distinct_count(packed: np.ndarray) -> int:
    """Distinct rows of a packed (n, c) uint64 matrix via lexsort + diff."""
    n, columns = packed.shape
    if n == 0:
        return 0
    order = np.lexsort(tuple(packed[:, c] for c in range(columns - 1, -1, -1)))
    sorted_rows = packed[order]
    changed = np.any(sorted_rows[1:] != sorted_rows[:-1], axis=1)
    return int(changed.sum()) + 1


def _distinct_prefix_counts(table: Table, spec: SortSpec) -> list[int]:
    """Distinct row counts of each key-column prefix, from the real data."""
    keys = normalize_keys(table, spec, include_row_id=False)
    counts = []
    for segment in keys.layout.segments:
        width = segment.offset + segment.total_width
        packed = _pack_u64_columns(keys.matrix[:, :width])
        counts.append(_distinct_count(packed))
    return counts


def comparison_profile(table: Table, spec: SortSpec) -> ComparisonProfile:
    """Estimate per-comparison behaviour of sorting ``table`` by ``spec``.

    During a comparison sort of n rows where the first c key columns take
    d_c distinct values, the comparisons that land inside groups tied on
    those columns are about ``n * log2(n / d_c)`` of the total
    ``n * log2(n)`` (each tied group of g rows sorts internally with
    g*log2(g) comparisons).  So the probability that a comparison must
    examine column c+1 is approximately ``log2(n/d_c) / log2(n)``.
    """
    n = table.num_rows
    distinct = _distinct_prefix_counts(table, spec)
    if n <= 1:
        return ComparisonProfile(
            (1.0,) + (0.0,) * (len(spec) - 1), 0.0, tuple(distinct)
        )
    log_n = math.log2(n)
    probabilities = [1.0]
    for c in range(1, len(spec)):
        d_prev = max(1, distinct[c - 1])
        p = max(0.0, math.log2(n / d_prev) / log_n) if n > d_prev else 0.0
        probabilities.append(min(1.0, p))
    # Tie-branch unpredictability: a branch taken with probability q
    # mispredicts ~2q(1-q) of the time under a saturating predictor; the
    # branch at column c executes with probability p[c] and is "taken"
    # (tie -> continue) with probability p[c+1]/p[c].
    unpredictability = 0.0
    if len(spec) > 1:
        for c in range(len(spec) - 1):
            p_exec = probabilities[c]
            if p_exec <= 0.0:
                continue
            q = min(1.0, probabilities[c + 1] / p_exec)
            unpredictability += p_exec * 2.0 * q * (1.0 - q)
    return ComparisonProfile(
        tuple(probabilities), unpredictability, tuple(distinct)
    )


def sort_comparisons(n: int) -> float:
    """Expected comparisons of a tuned quicksort over n rows (~1.1 n lg n)."""
    if n <= 1:
        return 0.0
    return 1.1 * n * math.log2(n)
