"""System models for the end-to-end comparison of Section VII."""

from repro.systems.base import SystemModel, SystemRun, WorkloadFacts, gather_facts
from repro.systems.clickhouse_model import ClickHouseModel
from repro.systems.compiled_row import CompiledRowModel, HyPerModel, UmbraModel
from repro.systems.duckdb_model import DuckDBModel
from repro.systems.monetdb_model import MonetDBModel
from repro.systems.profile import (
    ComparisonProfile,
    HardwareProfile,
    comparison_profile,
    sort_comparisons,
)
from repro.systems.registry import SYSTEM_NAMES, all_systems, make_system

__all__ = [
    "SystemModel",
    "SystemRun",
    "WorkloadFacts",
    "gather_facts",
    "ClickHouseModel",
    "CompiledRowModel",
    "HyPerModel",
    "UmbraModel",
    "DuckDBModel",
    "MonetDBModel",
    "ComparisonProfile",
    "HardwareProfile",
    "comparison_profile",
    "sort_comparisons",
    "SYSTEM_NAMES",
    "all_systems",
    "make_system",
]
