"""Model of ClickHouse's sort: columnar throughout.

Per Section VII: thread-local sorts on a columnar format -- radix sort if
sorting by a single integer column, otherwise pdqsort with a
tuple-at-a-time comparator (JIT compilation removes most interpretation
overhead, so no per-value call cost, but the random access and tie
branches of comparing columnar tuples remain); sorted runs are merged with
a k-way merge; the payload is gathered column-by-column through the sorted
row indices.

This is the model whose per-comparison cost grows with both the number of
rows (column working set outgrows the caches) and the number of key
columns (one random access pair per examined column) -- the degradation
visible in Figures 12 and 13.
"""

from __future__ import annotations

import math

from repro.engine.parallel import PhaseModel, makespan
from repro.systems.base import SystemModel, WorkloadFacts
from repro.systems.profile import sort_comparisons
from repro.table.table import Table

__all__ = ["ClickHouseModel"]


class ClickHouseModel(SystemModel):
    name = "ClickHouse"
    parallel = True

    def _is_single_int_key(self, facts: WorkloadFacts) -> bool:
        return (
            facts.num_keys == 1
            and not facts.key_is_string[0]
            and not facts.key_is_float[0]
        )

    def _tuple_comparison_cost(
        self, run_size: int, facts: WorkloadFacts
    ) -> float:
        """Cost of one tuple-at-a-time comparison on columnar data."""
        profile = self.profile
        cost = 2 * profile.hit_cost  # the two row indices (mostly cached)
        for p, width, stringy in zip(
            facts.comparisons.examine_probability,
            facts.key_widths,
            facts.key_is_string,
        ):
            column_bytes = run_size * (8 if stringy else width)
            load = profile.random_access_cost(column_bytes)
            if stringy:
                # Pointer indirection, a dispatched comparison routine
                # (length handling / collation), and a byte loop.
                heap_load = profile.random_access_cost(
                    run_size * max(8.0, facts.avg_string_bytes)
                )
                cost += p * (
                    2 * load
                    + 2 * heap_load
                    + profile.call_cost
                    + 2 * facts.avg_string_bytes
                )
            else:
                cost += p * 2 * load
        cost += (
            facts.comparisons.tie_branch_unpredictability
            * self.profile.branch_miss_cost
        )
        cost += self.float_penalty(facts)
        cost += self.outcome_branch_cost()
        return cost

    def sort_phases(self, table: Table, facts: WorkloadFacts) -> PhaseModel:
        profile = self.profile
        model = PhaseModel(self.threads)
        n = facts.num_rows
        if n == 0:
            return model
        run_sizes = self.run_sizes(n)

        # Thread-local run sorts on (value, index) pairs / indices.
        if self._is_single_int_key(facts):
            # Radix sort of 8-byte (value, index) pairs: one counting pass
            # per value byte over a streaming working set.
            passes = facts.key_widths[0]
            sort_costs = [
                passes
                * size
                * (profile.random_access_cost(2 * size * 8) + 4.0)
                for size in run_sizes
            ]
        else:
            sort_costs = []
            for size in run_sizes:
                per_comparison = self._tuple_comparison_cost(size, facts)
                comparisons = sort_comparisons(size)
                swaps = 0.3 * comparisons * 2 * profile.hit_cost  # indices
                sort_costs.append(comparisons * per_comparison + swaps)
        model.phase("run-sort", sort_costs)

        # K-way merge of the runs: a single (single-threaded) merging pass
        # moving every selected column once.  Run heads are streamed, so
        # merge comparisons hit cache; the cost is log2(k) cached compares
        # plus an unpredictable take-side branch per output element.
        runs = len(run_sizes)
        if runs > 1:
            per_merge_cmp = (
                2 * facts.num_keys * profile.hit_cost
                + self.float_penalty(facts)
            )
            merge_cycles = n * (
                math.log2(runs) * per_merge_cmp
                + 0.25 * profile.branch_miss_cost
            ) + profile.stream_cost(
                2 * n * (facts.fixed_key_bytes + facts.payload_bytes)
            )
            model.sequential("kway-merge", merge_cycles)

        # Gather the payload columns through the sorted indices.
        gather_costs = []
        payload_width = max(4, facts.payload_bytes)
        for size in run_sizes:
            gather_costs.append(
                size
                * (
                    profile.random_access_cost(n * payload_width)
                    + payload_width / 8.0
                )
            )
        model.phase("payload-gather", gather_costs)
        return model
