"""Models of HyPer and Umbra: compiled row-based sorting.

Per Section VII, both systems have "a compiled, row-based sorting
implementation similar to what is described in [Morsel-driven
parallelism]": threads materialize query-specific row structs, sort
thread-locally with a pdqsort-like quicksort using a *statically compiled*
comparator (no call or interpretation overhead), merge in parallel with a
k-way merge **on pointers** (no data movement), and physically collect the
rows only when the sort's output is read.

The two systems share this architecture; the paper observes Umbra to be
slightly faster overall on single-key sorts but to degrade more with
additional key columns (2.4-3x from one to four keys, vs ~1.5x for HyPer).
We model that with two calibration knobs: a base-cost scale and a scale on
the comparator's per-extra-column work.
"""

from __future__ import annotations

import math

from repro.engine.parallel import PhaseModel, makespan
from repro.systems.base import SystemModel, WorkloadFacts
from repro.systems.profile import sort_comparisons
from repro.table.table import Table

__all__ = ["CompiledRowModel", "HyPerModel", "UmbraModel"]


class CompiledRowModel(SystemModel):
    """Shared HyPer/Umbra architecture with per-system calibration."""

    name = "CompiledRow"
    parallel = True
    base_scale = 1.0
    extra_column_scale = 1.0

    def _row_width(self, facts: WorkloadFacts) -> int:
        width = facts.fixed_key_bytes + facts.payload_bytes + 8  # row id/ptr
        return (width + 7) // 8 * 8

    def _comparison_cost(self, run_size: int, facts: WorkloadFacts) -> float:
        """One statically compiled tuple comparison on contiguous rows."""
        profile = self.profile
        row_width = self._row_width(facts)
        probabilities = facts.comparisons.examine_probability
        # Rows move as the sort progresses, so accesses amortize to cached
        # loads plus a small per-level fill share; later key columns are
        # on the same cache line -- the locality row formats buy.
        fill = self.rowsort_fill_cost(
            run_size * row_width, row_width, run_size
        )
        cost = 2 * (profile.hit_cost + fill)
        extra = 0.0
        for p, width, stringy in zip(
            probabilities[1:], facts.key_widths[1:], facts.key_is_string[1:]
        ):
            extra += p * 2 * profile.hit_cost
        # Compiled engines store a short string prefix inline in the row
        # ("German strings"); only prefix ties chase the out-of-row data.
        tie4 = facts.string_prefix4_tie_probability
        for p, stringy in zip(probabilities, facts.key_is_string):
            if stringy:
                heap = profile.random_access_cost(
                    run_size * max(8.0, facts.avg_string_bytes)
                )
                extra += p * (
                    2 * profile.hit_cost
                    + tie4 * (2 * heap + 2 * facts.avg_string_bytes / 8.0)
                )
        branch = (
            facts.comparisons.tie_branch_unpredictability
            * profile.branch_miss_cost
        )
        cost += self.extra_column_scale * (extra + branch)
        cost += self.float_penalty(facts)
        cost += self.outcome_branch_cost()
        return self.base_scale * cost

    def sort_phases(self, table: Table, facts: WorkloadFacts) -> PhaseModel:
        profile = self.profile
        model = PhaseModel(self.threads)
        n = facts.num_rows
        if n == 0:
            return model
        row_width = self._row_width(facts)
        run_sizes = self.run_sizes(n)

        # Materialize the generated row structs (streaming).
        model.phase(
            "materialize",
            [
                profile.stream_cost(
                    size * (facts.fixed_key_bytes + facts.payload_bytes)
                )
                + profile.stream_cost(size * row_width)
                for size in run_sizes
            ],
        )

        # Thread-local quicksort with the compiled comparator; swaps move
        # whole rows.
        sort_costs = []
        for size in run_sizes:
            comparisons = sort_comparisons(size)
            per_comparison = self._comparison_cost(size, facts)
            swaps = 0.3 * comparisons * 3 * profile.stream_cost(row_width)
            sort_costs.append(comparisons * per_comparison + swaps)
        model.phase("run-sort", sort_costs)

        # Parallel k-way merge on pointers: no data movement, and each run
        # is consumed front-to-back (runs were physically sorted in
        # place), so the loads are k prefetch-friendly sequential streams.
        runs = len(run_sizes)
        if runs > 1:
            per_element = (
                math.log2(runs) * 2 * facts.num_keys * profile.hit_cost
                + profile.stream_cost(row_width)
                + 0.5 * profile.branch_miss_cost  # take-side branch
            )
            merge_tasks = [
                (n / self.threads) * per_element
            ] * self.threads
            model.phase("pointer-merge", merge_tasks)

        # Physically collect rows in sorted order when output is read:
        # gathering through the merged pointer sequence reads k sequential
        # run streams and writes one output stream.
        collect_tasks = [
            size * (2 * profile.stream_cost(row_width) + 2.0)
            for size in run_sizes
        ]
        model.phase("collect-output", collect_tasks)
        return model


class HyPerModel(CompiledRowModel):
    name = "HyPer"
    base_scale = 1.12
    extra_column_scale = 0.55


class UmbraModel(CompiledRowModel):
    name = "Umbra"
    base_scale = 1.0
    extra_column_scale = 2.0
