"""Model of MonetDB's sort: single-threaded columnar subsort.

Per Section VII: MonetDB sorts with a single-threaded quicksort on a
columnar format, using the subsort approach for multiple key columns
(sort by column 1, then refine tied ranges by column 2, and so on), and
collects the payload in sorted order afterwards.

Being single-threaded is what puts MonetDB an order of magnitude behind
the parallel systems in Figures 12-14; the subsort passes are why it
slows roughly linearly with the number of key columns (about 3x from one
to four keys in Figure 13).
"""

from __future__ import annotations

import math

from repro.engine.parallel import PhaseModel
from repro.systems.base import SystemModel, WorkloadFacts
from repro.table.table import Table

__all__ = ["MonetDBModel"]


class MonetDBModel(SystemModel):
    name = "MonetDB"
    parallel = False  # the defining architectural property here

    def sort_phases(self, table: Table, facts: WorkloadFacts) -> PhaseModel:
        profile = self.profile
        model = PhaseModel(1)
        n = facts.num_rows
        if n == 0:
            return model
        distinct = facts.comparisons.distinct_prefix
        log_n = math.log2(n) if n > 1 else 0.0

        total = 0.0
        for c, (width, stringy) in enumerate(
            zip(facts.key_widths, facts.key_is_string)
        ):
            # Comparisons in pass c happen inside groups tied on the first
            # c columns: about 1.1 * n * log2(n / d_{c-1}) of them.
            d_prev = 1 if c == 0 else max(1, distinct[c - 1])
            if n <= d_prev:
                continue
            comparisons = 1.1 * n * math.log2(n / d_prev)
            # MonetDB's quicksort physically reorders (value, oid) pairs,
            # so like other moving sorts its loads amortize to cached
            # accesses plus a per-level fill share.
            pair_width = (8 if stringy else width) + 8  # value + oid
            fill = self.rowsort_fill_cost(n * pair_width, pair_width, n)
            if stringy:
                heap = profile.random_access_cost(
                    n * max(8.0, facts.avg_string_bytes)
                )
                # String BATs dereference out-of-line data and run an
                # interpreted comparison routine per pair.
                per_comparison = (
                    2 * (profile.hit_cost + fill)
                    + 2 * heap
                    + profile.call_cost
                    + 2 * facts.avg_string_bytes
                )
            else:
                # Branchless single-column comparator on moving pairs,
                # plus MonetDB's per-value BAT-operator overhead.
                per_comparison = 2 * (profile.hit_cost + fill) + 8.0
            per_comparison += self.float_penalty(facts)
            per_comparison += self.outcome_branch_cost()
            swaps = 0.3 * comparisons * 3 * profile.stream_cost(pair_width)
            # The tie scan between passes streams the sorted column once.
            tie_scan = (
                profile.stream_cost(n * pair_width)
                if c + 1 < facts.num_keys
                else 0.0
            )
            total += comparisons * per_comparison + swaps + tie_scan
        model.sequential("subsort", total)

        # Payload collection: one random gather per row, single-threaded.
        payload_width = max(4, facts.payload_bytes)
        model.sequential(
            "payload-gather",
            n
            * (
                profile.random_access_cost(n * payload_width)
                + payload_width / 8.0
            ),
        )
        del log_n
        return model
