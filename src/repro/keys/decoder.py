"""Decoding normalized keys back into values.

Decoding is the inverse of :mod:`repro.keys.normalizer` for fixed-width
types and recovers the stored *prefix* for VARCHAR (the full string is not
in the key).  It exists for verification: round-trip property tests, and the
sort operator's debug assertions.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.errors import KeyEncodingError
from repro.keys.normalizer import MODE_FOLDED, KeyLayout, KeySegment
from repro.types.datatypes import TypeId

__all__ = ["decode_segment", "decode_key_row"]


def _decode_unsigned(raw: bytes) -> int:
    return int.from_bytes(raw, "big")


def _decode_signed(raw: bytes) -> int:
    bits = 8 * len(raw)
    return int.from_bytes(raw, "big") - (1 << (bits - 1))


def _decode_float(raw: bytes) -> float:
    width = len(raw)
    bits = int.from_bytes(raw, "big")
    if width == 4:
        sign_bit, all_ones, fmt_i, fmt_f = 0x80000000, 0xFFFFFFFF, ">I", ">f"
    elif width == 8:
        sign_bit = 0x8000000000000000
        all_ones = 0xFFFFFFFFFFFFFFFF
        fmt_i, fmt_f = ">Q", ">d"
    else:
        raise KeyEncodingError(f"floats are 4 or 8 bytes, not {width}")
    if bits & sign_bit:
        bits = bits & ~sign_bit  # was non-negative: clear the sign bit
    else:
        bits = bits ^ all_ones  # was negative: undo full inversion
    (value,) = struct.unpack(fmt_f, struct.pack(fmt_i, bits))
    return value


def _uncompress_segment(raw: bytes, segment: KeySegment) -> bytes | None:
    """Compressed segment bytes -> full-width ascending value bytes.

    Undoes the stored-code transform of a ``nobyte``/``folded`` segment
    (NULL fold, DESC-in-code-domain, bias) and re-serializes the code at
    the type's declared width, so the plain typed decoders below apply
    unchanged.  Returns ``None`` for the reserved NULL code.
    """
    stored = int.from_bytes(raw, "big")
    code_range = segment.code_range
    if segment.mode == MODE_FOLDED:
        if segment.key.nulls_first:
            if stored == 0:
                return None
            stored -= 1
        elif stored == code_range:
            return None
    if not 0 <= stored < code_range:
        raise KeyEncodingError(
            f"stored code {stored} outside range {code_range} of segment "
            f"{segment.key.column!r}"
        )
    if segment.key.descending:
        stored = (code_range - 1) - stored
    code = stored + segment.bias
    width = segment.dtype.fixed_width
    assert width is not None
    return code.to_bytes(width, "big")


def decode_segment(raw: bytes, segment: KeySegment) -> Any:
    """Decode one segment's bytes to a value.

    For ``plain`` segments ``raw`` is the NULL byte plus value bytes; for
    compressed segments it is the stored code bytes alone.  Returns
    ``None`` for NULL.  VARCHAR returns the stored prefix with padding
    stripped (which equals the original string only if it fit).
    """
    if len(raw) != segment.total_width:
        raise KeyEncodingError(
            f"segment needs {segment.total_width} bytes, got {len(raw)}"
        )
    if not segment.has_null_byte:
        value_bytes = _uncompress_segment(raw, segment)
        if value_bytes is None:
            return None
        return _decode_fixed(value_bytes, segment)
    null_byte, value_bytes = raw[0], raw[1:]
    if null_byte == segment.null_byte_for_null:
        return None
    if null_byte != segment.null_byte_for_valid:
        raise KeyEncodingError(f"invalid NULL indicator byte {null_byte:#x}")
    if segment.key.descending:
        value_bytes = bytes(0xFF - b for b in value_bytes)
    if segment.dtype.type_id is TypeId.VARCHAR:
        return value_bytes.rstrip(b"\x00").decode("utf-8", errors="replace")
    return _decode_fixed(value_bytes, segment)


def _decode_fixed(value_bytes: bytes, segment: KeySegment) -> Any:
    """Decode full-width ascending value bytes of a fixed-width type."""
    dtype = segment.dtype
    if dtype.is_float:
        return _decode_float(value_bytes)
    if dtype.is_signed:
        return _decode_signed(value_bytes)
    value = _decode_unsigned(value_bytes)
    if dtype.type_id is TypeId.BOOLEAN:
        return bool(value)
    return value


def decode_key_row(
    raw: bytes | np.ndarray, layout: KeyLayout
) -> tuple[Any, ...]:
    """Decode one full normalized-key row into its tuple of values.

    The row-id suffix, if present, is ignored; use
    :meth:`~repro.keys.normalizer.NormalizedKeys.row_ids` for those.
    """
    if isinstance(raw, np.ndarray):
        raw = raw.tobytes()
    values = []
    for segment in layout.segments:
        chunk = raw[segment.offset : segment.offset + segment.total_width]
        values.append(decode_segment(chunk, segment))
    return tuple(values)
