"""Runtime key compression: minimal-width order-preserving segments.

The paper (Section V) shrinks normalized keys from runtime statistics:
DuckDB scans each key column's min/max before sorting and encodes the
column at the narrowest byte width that distinguishes its values, biasing
to unsigned so e.g. an int64 column in ``[0, 200)`` costs a single byte.
When the narrow domain has headroom the NULL indicator byte is folded into
the value itself by reserving the extreme code point for NULL -- under
NULLS FIRST code ``0`` means NULL and valid codes shift up by one, under
NULLS LAST the code one past the valid maximum means NULL.

This module supplies the pieces the sort pipeline wires together:

* :class:`KeyStatsAccumulator` -- a monotone per-column stats pass
  (min/max code, NULL presence, VARCHAR max UTF-8 length) that can be fed
  run by run.  Because min only decreases, max only increases and NULL
  presence only latches, the layout built after more data is always a
  *widening* of any earlier one (``nobyte`` -> ``folded`` -> ``plain``,
  widths non-decreasing), which makes cheap re-basing possible.
* :func:`rebase_matrix` -- rewrite a key matrix encoded under an earlier
  (narrower) layout into a later (wider) one, byte-identical to encoding
  the original values directly under the wider layout.
* :func:`serialize_layout` / :func:`deserialize_layout` -- the compact
  geometry blob the spill-file header carries so a spilled run can be
  merged by a reader that only knows the sort spec and schema.
* :func:`key_carried_eligible` / :func:`decode_key_table` -- when every
  output column is a key column of a losslessly-decodable type, the sorted
  payload can be reconstructed from the keys alone and runs spill *keys
  only* (the paper's key-carried rows taken to its extreme).

Compressed segments apply DESC in the code domain (``rel -> range-1-rel``)
instead of byte inversion, so one rule covers NULL folding and direction.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import KeyEncodingError
from repro.keys.encoding import (
    _WIDTH_TO_UNSIGNED,
    fixed_column_codes,
    utf8_byte_lengths,
)
from repro.keys.normalizer import (
    MAX_STRING_PREFIX,
    MODE_FOLDED,
    MODE_NOBYTE,
    MODE_PLAIN,
    KeyLayout,
    KeySegment,
    write_compressed_segment,
)
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import DataType, TypeId
from repro.types.schema import Schema
from repro.types.sortspec import SortKey, SortSpec

__all__ = [
    "KeyStatsAccumulator",
    "build_compressed_layout",
    "rebase_matrix",
    "segment_codes",
    "serialize_layout",
    "deserialize_layout",
    "key_carried_eligible",
    "decode_key_table",
    "plain_key_width",
]


# ---------------------------------------------------------------------- #
# Statistics pass and layout construction
# ---------------------------------------------------------------------- #


class _ColumnAcc:
    """Running statistics of one key column, in the order-code domain."""

    __slots__ = ("min_code", "max_code", "has_nulls", "max_len")

    def __init__(self) -> None:
        self.min_code: int | None = None
        self.max_code: int | None = None
        self.has_nulls = False
        self.max_len = 0


def _bytes_for(max_code: int) -> int:
    """Minimal byte width that can store ``max_code`` (at least 1)."""
    return max(1, (int(max_code).bit_length() + 7) // 8)


def _segment_for(
    key: SortKey, dtype: DataType, offset: int, acc: _ColumnAcc
) -> KeySegment:
    """The narrowest segment the statistics seen so far permit."""
    if dtype.type_id is TypeId.VARCHAR:
        # Strings keep today's NULL byte + runtime prefix; the length scan
        # already is the compression (prefix = max length, capped at 12).
        width = min(max(1, acc.max_len), MAX_STRING_PREFIX)
        return KeySegment(key, dtype, offset, width, acc.max_len <= width)
    lo = 0 if acc.min_code is None else acc.min_code
    hi = 0 if acc.max_code is None else acc.max_code
    code_range = hi - lo + 1
    if not acc.has_nulls:
        return KeySegment(
            key, dtype, offset, _bytes_for(code_range - 1), True,
            MODE_NOBYTE, lo, code_range,
        )
    if code_range < (1 << 64):  # headroom for the reserved NULL code
        return KeySegment(
            key, dtype, offset, _bytes_for(code_range), True,
            MODE_FOLDED, lo, code_range,
        )
    # Full-range column *with* NULLs: no spare code point exists, fall
    # back to the plain NULL byte + full-width encoding.
    assert dtype.fixed_width is not None
    return KeySegment(key, dtype, offset, dtype.fixed_width, True)


class KeyStatsAccumulator:
    """Monotone per-column statistics over the tables fed to a sort.

    Feed every input chunk through :meth:`update`, then
    :meth:`build_layout` yields the narrowest :class:`KeyLayout` covering
    all data seen so far.  Layouts built after more updates only ever
    widen earlier ones (see the module docstring), so runs encoded early
    can be re-based with :func:`rebase_matrix` instead of re-encoded.
    """

    def __init__(self, schema: Schema, spec: SortSpec) -> None:
        self.schema = schema
        self.spec = spec
        self._columns: dict[str, _ColumnAcc] = {}
        for key in spec.keys:
            self._columns.setdefault(key.column, _ColumnAcc())

    def update(self, table: Table) -> None:
        """Fold one table's key columns into the running statistics."""
        for name, acc in self._columns.items():
            column = table.column(name)
            dtype = self.schema.column(name).dtype
            if column.has_nulls:
                acc.has_nulls = True
                data = column.data[column.validity]
            else:
                data = column.data
            if len(data) == 0:
                continue
            if dtype.type_id is TypeId.VARCHAR:
                acc.max_len = max(acc.max_len, int(utf8_byte_lengths(data).max()))
            else:
                codes = fixed_column_codes(data, dtype)
                lo, hi = int(codes.min()), int(codes.max())
                acc.min_code = lo if acc.min_code is None else min(acc.min_code, lo)
                acc.max_code = hi if acc.max_code is None else max(acc.max_code, hi)

    def build_layout(
        self, include_row_id: bool = True, row_id_width: int = 8
    ) -> KeyLayout:
        """The compressed layout covering everything seen so far."""
        segments = []
        offset = 0
        for key in self.spec.keys:
            dtype = self.schema.column(key.column).dtype
            segment = _segment_for(key, dtype, offset, self._columns[key.column])
            segments.append(segment)
            offset += segment.total_width
        suffix = 0
        if include_row_id:
            if row_id_width not in (4, 8):
                raise KeyEncodingError(
                    f"row_id_width must be 4 or 8, got {row_id_width}"
                )
            suffix = row_id_width
        return KeyLayout(tuple(segments), offset, suffix)


def build_compressed_layout(
    table: Table,
    spec: SortSpec,
    include_row_id: bool = True,
    row_id_width: int = 8,
) -> KeyLayout:
    """One-shot compressed layout for a single table."""
    acc = KeyStatsAccumulator(table.schema, spec)
    acc.update(table)
    return acc.build_layout(include_row_id, row_id_width)


def plain_key_width(layout: KeyLayout) -> int:
    """Key bytes per row the same spec costs without compression."""
    total = 0
    for segment in layout.segments:
        if segment.dtype.fixed_width is None:
            total += 1 + segment.value_width
        else:
            total += 1 + segment.dtype.fixed_width
    return total


# ---------------------------------------------------------------------- #
# Decoding segment bytes back to order codes, and re-basing
# ---------------------------------------------------------------------- #


def _big_endian_codes(raw: np.ndarray) -> np.ndarray:
    """Big-endian (n, w) uint8 bytes -> writable uint64 codes."""
    n, width = raw.shape
    padded = np.zeros((n, 8), dtype=np.uint8)
    padded[:, 8 - width :] = raw
    return padded.view(">u8").reshape(n).astype(np.uint64)


def segment_codes(
    matrix: np.ndarray, segment: KeySegment
) -> tuple[np.ndarray, np.ndarray]:
    """Recover ``(order codes, null mask)`` from a fixed-width segment.

    The exact inverse of what :func:`repro.keys.normalizer.normalize_keys`
    wrote: un-fold the NULL code, undo DESC, add the bias back.  NULL rows
    get code 0 (their original filler value is not recoverable).
    """
    if segment.dtype.type_id is TypeId.VARCHAR:
        raise KeyEncodingError("VARCHAR segments have no code domain")
    start = segment.offset
    width = segment.value_width
    if segment.mode == MODE_PLAIN:
        null_mask = matrix[:, start] == segment.null_byte_for_null
        raw = matrix[:, start + 1 : start + 1 + width]
        if segment.key.descending:
            raw = 0xFF - raw
        codes = _big_endian_codes(raw)
        codes[null_mask] = 0
        return codes, null_mask
    stored = _big_endian_codes(matrix[:, start : start + width])
    code_range = segment.code_range
    if segment.mode == MODE_FOLDED:
        if segment.key.nulls_first:
            null_mask = stored == np.uint64(0)
            rel = stored - np.uint64(1)  # NULL rows wrap; masked below
        else:
            null_mask = stored == np.uint64(code_range)
            rel = stored
    else:
        null_mask = np.zeros(len(matrix), dtype=bool)
        rel = stored
    if segment.key.descending:
        rel = np.uint64(code_range - 1) - rel
    codes = rel + np.uint64(segment.bias)
    codes[null_mask] = 0
    return codes, null_mask


def _write_plain_fixed(
    out: np.ndarray,
    segment: KeySegment,
    codes: np.ndarray,
    null_mask: np.ndarray,
) -> None:
    """Write a plain fixed-width segment from order codes."""
    width = segment.dtype.fixed_width
    assert width is not None and width == segment.value_width
    start = segment.offset
    n = len(codes)
    out[:, start] = np.where(
        null_mask, segment.null_byte_for_null, segment.null_byte_for_valid
    )
    big = np.ascontiguousarray(codes.astype(">u8")).view(np.uint8)
    value = big.reshape(n, 8)[:, 8 - width :]
    if segment.key.descending:
        value = 0xFF - value
    out[:, start + 1 : start + 1 + width] = value
    if null_mask.any():
        out[null_mask, start + 1 : start + 1 + width] = 0


def _rebase_segment(
    src: np.ndarray, dst: np.ndarray, old: KeySegment, new: KeySegment
) -> None:
    if old.key != new.key or old.dtype is not new.dtype:
        raise KeyEncodingError("layouts do not describe the same sort spec")
    if old.mode == MODE_PLAIN and new.mode == MODE_PLAIN:
        if old.value_width == new.value_width:
            dst[:, new.offset : new.offset + new.total_width] = src[
                :, old.offset : old.offset + old.total_width
            ]
            return
        if (
            old.dtype.type_id is not TypeId.VARCHAR
            or old.value_width > new.value_width
        ):
            raise KeyEncodingError("cannot narrow a plain segment")
        # VARCHAR prefix widening.  An old width below the cap equals the
        # old runs' exact maximum length, so every old value's bytes past
        # it are pure padding: extend with the padding byte (0xFF under
        # DESC after inversion, else 0x00), keeping NULL rows all-zero.
        copied = 1 + old.value_width
        dst[:, new.offset : new.offset + copied] = src[
            :, old.offset : old.offset + copied
        ]
        pad = 0xFF if new.key.descending else 0x00
        tail = slice(new.offset + copied, new.offset + 1 + new.value_width)
        dst[:, tail] = pad
        if pad:
            null_rows = src[:, old.offset] == old.null_byte_for_null
            dst[null_rows, tail] = 0
        return
    if old.mode == MODE_PLAIN:
        raise KeyEncodingError("segment modes only widen toward plain")
    codes, null_mask = segment_codes(src, old)
    if new.mode == MODE_PLAIN:
        _write_plain_fixed(dst, new, codes, null_mask)
        return
    if null_mask.any() and new.mode != MODE_FOLDED:
        raise KeyEncodingError("NULL rows need a folded or plain segment")
    valid = ~null_mask if null_mask.any() else None
    write_compressed_segment(dst, new, codes, valid)


def rebase_matrix(
    matrix: np.ndarray, old_layout: KeyLayout, new_layout: KeyLayout
) -> np.ndarray:
    """Re-encode a key matrix from ``old_layout`` into ``new_layout``.

    ``new_layout`` must be a widening of ``old_layout`` (both built from
    the same accumulator, the new one after at least as many updates).
    The result is byte-identical to normalizing the original rows under
    ``new_layout`` directly -- except NULL rows of key-carried decodes,
    whose unrecoverable filler re-encodes as the NULL code anyway.
    Returns ``matrix`` itself when the layouts already agree.
    """
    if old_layout == new_layout:
        return matrix
    if old_layout.row_id_width != new_layout.row_id_width:
        raise KeyEncodingError("row-id width may not change across runs")
    if len(old_layout.segments) != len(new_layout.segments):
        raise KeyEncodingError("layouts have different segment counts")
    out = np.empty((len(matrix), new_layout.total_width), dtype=np.uint8)
    for old_seg, new_seg in zip(old_layout.segments, new_layout.segments):
        _rebase_segment(matrix, out, old_seg, new_seg)
    if new_layout.row_id_width:
        out[:, new_layout.key_width :] = matrix[:, old_layout.key_width :]
    return out


# ---------------------------------------------------------------------- #
# Layout serialization (spill-file header payload)
# ---------------------------------------------------------------------- #

_LAYOUT_VERSION = 1
_LAYOUT_HEADER = struct.Struct("<BBH")  # version, row_id_width, num segments
_LAYOUT_SEGMENT = struct.Struct("<BBBQQ")  # flags, mode, width, bias, range-1
_MODE_CODES = {MODE_PLAIN: 0, MODE_NOBYTE: 1, MODE_FOLDED: 2}
_MODE_NAMES = {code: mode for mode, code in _MODE_CODES.items()}
_FLAG_DESC, _FLAG_NULLS_FIRST, _FLAG_PREFIX_EXACT = 1, 2, 4


def serialize_layout(layout: KeyLayout) -> bytes:
    """Pack a layout's geometry into the spill-header ``extra`` blob.

    Only geometry travels (column name, flags, mode, width, bias, code
    range); identity -- the :class:`SortKey` and :class:`DataType` -- is
    reconstructed from the live spec and schema on read, which every
    merge participant already holds.  ``code_range`` can be ``2**64`` (a
    full-width nobyte segment) so its predecessor is stored instead.
    """
    parts = [
        _LAYOUT_HEADER.pack(
            _LAYOUT_VERSION, layout.row_id_width, len(layout.segments)
        )
    ]
    for segment in layout.segments:
        name = segment.key.column.encode("utf-8")
        flags = (
            (_FLAG_DESC if segment.key.descending else 0)
            | (_FLAG_NULLS_FIRST if segment.key.nulls_first else 0)
            | (_FLAG_PREFIX_EXACT if segment.prefix_exact else 0)
        )
        parts.append(struct.pack("<H", len(name)))
        parts.append(name)
        parts.append(
            _LAYOUT_SEGMENT.pack(
                flags,
                _MODE_CODES[segment.mode],
                segment.value_width,
                segment.bias,
                segment.code_range - 1,
            )
        )
    return b"".join(parts)


def deserialize_layout(blob: bytes, schema: Schema, spec: SortSpec) -> KeyLayout:
    """Rebuild a :class:`KeyLayout` from :func:`serialize_layout` output.

    Cross-checks the blob against the live ``spec`` (column order,
    direction, NULL placement): a mismatch means the spill file belongs
    to a different sort and raises :class:`KeyEncodingError`.
    """
    try:
        version, row_id_width, nsegs = _LAYOUT_HEADER.unpack_from(blob, 0)
        if version != _LAYOUT_VERSION:
            raise KeyEncodingError(f"unknown key-layout version {version}")
        if nsegs != len(spec.keys):
            raise KeyEncodingError(
                f"layout has {nsegs} segments, spec has {len(spec.keys)}"
            )
        cursor = _LAYOUT_HEADER.size
        segments = []
        offset = 0
        for key in spec.keys:
            (name_len,) = struct.unpack_from("<H", blob, cursor)
            cursor += 2
            name = bytes(blob[cursor : cursor + name_len]).decode("utf-8")
            if len(name.encode("utf-8")) != name_len:
                raise KeyEncodingError("truncated key-layout blob")
            cursor += name_len
            flags, mode_code, value_width, bias, top = (
                _LAYOUT_SEGMENT.unpack_from(blob, cursor)
            )
            cursor += _LAYOUT_SEGMENT.size
            if name != key.column:
                raise KeyEncodingError(
                    f"layout column {name!r} != spec column {key.column!r}"
                )
            if (
                bool(flags & _FLAG_DESC) != key.descending
                or bool(flags & _FLAG_NULLS_FIRST) != key.nulls_first
            ):
                raise KeyEncodingError(
                    f"layout direction flags disagree with spec for {name!r}"
                )
            if mode_code not in _MODE_NAMES:
                raise KeyEncodingError(f"unknown segment mode {mode_code}")
            segment = KeySegment(
                key,
                schema.column(name).dtype,
                offset,
                value_width,
                bool(flags & _FLAG_PREFIX_EXACT),
                _MODE_NAMES[mode_code],
                bias,
                top + 1,
            )
            segments.append(segment)
            offset += segment.total_width
    except struct.error as exc:
        raise KeyEncodingError(f"malformed key-layout blob: {exc}") from exc
    if cursor != len(blob):
        raise KeyEncodingError("trailing bytes in key-layout blob")
    return KeyLayout(tuple(segments), offset, row_id_width)


# ---------------------------------------------------------------------- #
# Key-carried rows: reconstructing the payload from keys alone
# ---------------------------------------------------------------------- #


def key_carried_eligible(schema: Schema, spec: SortSpec) -> bool:
    """Can the sorted output be rebuilt from the normalized keys alone?

    True when every schema column is a sort-key column of a fixed-width
    non-float type: integer (and boolean/date) codes decode back to the
    exact stored value, so spilled runs need no row payload at all.
    Floats are excluded because encoding canonicalizes NaN payloads and
    ``-0.0``; VARCHAR because prefixes truncate.
    """
    if len(schema) == 0:
        return False
    key_names = set(spec.column_names)
    for col in schema:
        if col.name not in key_names:
            return False
        if col.dtype.fixed_width is None or col.dtype.is_float:
            return False
    return True


def decode_key_table(
    matrix: np.ndarray, layout: KeyLayout, schema: Schema
) -> Table:
    """Rebuild a table from key bytes (key-carried sorts, vectorized).

    ``matrix`` rows must be (at least) ``layout.key_width`` wide; a
    trailing row-id suffix is ignored.  NULL rows decode with a zero data
    filler -- value-level equality with the source column holds, raw
    filler bytes may differ.
    """
    decoded: dict[str, ColumnVector] = {}
    for segment in layout.segments:
        name = segment.key.column
        if name in decoded:
            continue
        dtype = segment.dtype
        width = dtype.fixed_width
        if width is None or dtype.is_float:
            raise KeyEncodingError(
                f"column {name!r} ({dtype.name}) is not key-carried decodable"
            )
        codes, null_mask = segment_codes(matrix, segment)
        unsigned = _WIDTH_TO_UNSIGNED[width]
        bits = codes.astype(unsigned)
        if dtype.is_signed:
            bits = bits ^ (unsigned(1) << unsigned(8 * width - 1))
        data = bits.view(np.dtype(dtype.numpy_dtype))
        validity = None
        if null_mask.any():
            data[null_mask] = 0
            validity = ~null_mask
        decoded[name] = ColumnVector(dtype, data, validity)
    try:
        columns = [decoded[name] for name in schema.names]
    except KeyError as exc:
        raise KeyEncodingError(
            f"schema column {exc.args[0]!r} is not covered by the key layout"
        ) from exc
    return Table(schema, columns)
