"""Order-preserving binary encodings for single values and columns.

Key normalization (Blasgen et al. 1977, used since System R) turns a typed
value into bytes whose lexicographic (memcmp) order equals the value order.
This module implements the per-type transforms, both scalar (for tests and
documentation -- see the paper's Figure 7) and vectorized over numpy arrays
(what the production sort operator uses).

Transforms, for ascending order:

* unsigned integers: big-endian byte order.
* signed integers: big-endian, then flip the sign bit, so negative values
  (leading 1 bit) sort before positive ones.
* IEEE-754 floats: reinterpret as unsigned; if the sign bit is set invert
  *all* bits, otherwise set the sign bit.  This yields the IEEE total order.
  We canonicalize -0.0 to +0.0 (SQL treats them equal) and every NaN to the
  positive quiet-NaN pattern so NaNs compare equal and sort after +inf.
* strings: UTF-8 bytes of a fixed-length prefix, padded with 0x00.  Prefix
  comparison is exact only when no string exceeds the prefix; callers must
  tie-break longer strings (the sort operator does).

Descending order inverts the encoded value bytes (0xFF - b).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import KeyEncodingError
from repro.types.datatypes import DataType, TypeId

__all__ = [
    "encode_unsigned",
    "encode_signed",
    "encode_float",
    "encode_string",
    "encode_scalar",
    "encode_fixed_column",
    "fixed_column_codes",
    "encode_string_column",
    "utf8_byte_lengths",
    "invert_bytes",
    "F32_CANONICAL_NAN",
    "F64_CANONICAL_NAN",
]

F32_CANONICAL_NAN = np.uint32(0x7FC00000)
"""Quiet-NaN bit pattern all float32 NaNs are canonicalized to."""

F64_CANONICAL_NAN = np.uint64(0x7FF8000000000000)
"""Quiet-NaN bit pattern all float64 NaNs are canonicalized to."""

_WIDTH_TO_UNSIGNED = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


# ---------------------------------------------------------------------- #
# Scalar encoders (reference implementations; mirrors Figure 7)
# ---------------------------------------------------------------------- #


def encode_unsigned(value: int, width: int) -> bytes:
    """Big-endian encoding of an unsigned integer of ``width`` bytes."""
    if not 0 <= value < (1 << (8 * width)):
        raise KeyEncodingError(f"{value} out of range for unsigned {width}-byte")
    return value.to_bytes(width, "big")

def encode_signed(value: int, width: int) -> bytes:
    """Sign-flipped big-endian encoding of a signed integer.

    The most significant bit is XOR-ed so that the encoded bytes of negative
    numbers are lexicographically smaller than those of positive numbers --
    exactly the "flip the sign bit" step of the paper's Figure 7.
    """
    bits = 8 * width
    low, high = -(1 << (bits - 1)), 1 << (bits - 1)
    if not low <= value < high:
        raise KeyEncodingError(f"{value} out of range for signed {width}-byte")
    biased = value + high  # maps [low, high) onto [0, 2^bits)
    return biased.to_bytes(width, "big")


def encode_float(value: float, width: int) -> bytes:
    """IEEE-754 total-order encoding of a float (width 4 or 8)."""
    if width == 4:
        (bits,) = struct.unpack(">I", struct.pack(">f", value))
        sign_bit, all_ones, nan = 0x80000000, 0xFFFFFFFF, int(F32_CANONICAL_NAN)
    elif width == 8:
        (bits,) = struct.unpack(">Q", struct.pack(">d", value))
        sign_bit = 0x8000000000000000
        all_ones = 0xFFFFFFFFFFFFFFFF
        nan = int(F64_CANONICAL_NAN)
    else:
        raise KeyEncodingError(f"floats are 4 or 8 bytes, not {width}")
    if value != value:  # NaN: canonicalize so all NaNs encode identically
        bits = nan
    elif value == 0.0:  # canonicalize -0.0 to +0.0
        bits = 0
    if bits & sign_bit:
        bits = bits ^ all_ones  # negative: invert everything
    else:
        bits = bits | sign_bit  # non-negative: set sign bit
    return bits.to_bytes(width, "big")


def encode_string(value: str, prefix_len: int) -> bytes:
    """UTF-8 prefix of ``value``, zero-padded to ``prefix_len`` bytes."""
    if prefix_len <= 0:
        raise KeyEncodingError(f"prefix_len must be positive, got {prefix_len}")
    raw = value.encode("utf-8")[:prefix_len]
    return raw.ljust(prefix_len, b"\x00")


def encode_scalar(value, dtype: DataType, width: int) -> bytes:
    """Encode one non-NULL value of ``dtype`` into ``width`` bytes."""
    if dtype.type_id is TypeId.VARCHAR:
        return encode_string(str(value), width)
    if dtype.is_float:
        return encode_float(float(value), width)
    if dtype.is_signed:
        return encode_signed(int(value), width)
    return encode_unsigned(int(value), width)


def invert_bytes(encoded: bytes) -> bytes:
    """Invert every byte -- turns an ascending encoding into descending."""
    return (~np.frombuffer(encoded, dtype=np.uint8)).tobytes()


# ---------------------------------------------------------------------- #
# Vectorized (numpy) encoders
# ---------------------------------------------------------------------- #


def _order_bits(values: np.ndarray, dtype: DataType) -> np.ndarray:
    """The order-preserving unsigned bit pattern of each value.

    This is the type transform of the paper's Figure 7 *before* the
    big-endian byte serialization: an unsigned array (of the type's
    natural width) whose integer order equals the value order.
    """
    width = dtype.fixed_width
    if width is None:
        raise KeyEncodingError("use encode_string_column for VARCHAR")
    unsigned = _WIDTH_TO_UNSIGNED[width]
    if dtype.is_float:
        bits = np.ascontiguousarray(values).view(unsigned).copy()
        nan_pattern = F32_CANONICAL_NAN if width == 4 else F64_CANONICAL_NAN
        sign_bit = unsigned(1) << unsigned(8 * width - 1)
        bits[np.isnan(values)] = nan_pattern
        bits[values == 0.0] = 0  # -0.0 -> +0.0
        negative = (bits & sign_bit) != 0
        bits = np.where(negative, ~bits, bits | sign_bit)
    elif dtype.is_signed:
        sign_bit = unsigned(1) << unsigned(8 * width - 1)
        bits = np.ascontiguousarray(values).view(unsigned) ^ sign_bit
    else:
        bits = np.ascontiguousarray(values).astype(unsigned, copy=False)
    return bits


def fixed_column_codes(values: np.ndarray, dtype: DataType) -> np.ndarray:
    """Order-preserving unsigned codes of a fixed-width column, as uint64.

    The code domain the key-compression layer works in
    (:mod:`repro.keys.compression`): integer comparison of the returned
    codes equals value order, so per-column min/max statistics, the
    bias-to-unsigned subtraction, and the width truncation all become
    plain unsigned arithmetic.
    """
    return _order_bits(values, dtype).astype(np.uint64, copy=False)


def encode_fixed_column(values: np.ndarray, dtype: DataType) -> np.ndarray:
    """Encode a fixed-width column into an (n, width) uint8 matrix.

    The whole transform is vectorized: reinterpret, bias/flip, byteswap to
    big-endian, then view as bytes.  This is the "convert one vector at a
    time" step of the paper's pipeline.
    """
    width = dtype.fixed_width
    bits = _order_bits(values, dtype)
    big_endian = bits.astype(bits.dtype.newbyteorder(">"), copy=False)
    return np.ascontiguousarray(big_endian).view(np.uint8).reshape(len(values), width)


def _as_unicode_array(values: np.ndarray) -> np.ndarray:
    """Coerce a column to a fixed-width unicode array (``str`` per value)."""
    arr = np.asarray(values)
    if arr.dtype.kind != "U":
        arr = arr.astype(np.str_)
    return arr


def utf8_byte_lengths(values: np.ndarray) -> np.ndarray:
    """Per-value UTF-8 byte length of a string column, vectorized.

    The column is converted once to a fixed-width unicode array (for
    object arrays this applies ``str`` element-wise in C); each value's
    UTF-8 length is its character count plus one extra byte per codepoint
    >= U+0080, >= U+0800 and >= U+10000, computed with whole-array numpy
    reductions.

    Fixed-width unicode arrays cannot represent *trailing* NUL codepoints
    (they are indistinguishable from padding), so when the input needed
    conversion the vectorized sum is checked against the true encoded
    total -- stripping can only under-count, so an equal total proves
    every per-value length exact -- and the vanishingly rare NUL-suffixed
    column falls back to a per-value scan.
    """
    source = np.asarray(values)
    arr = _as_unicode_array(source)
    n = len(arr)
    if n == 0:
        return np.zeros(n, dtype=np.int64)
    if arr.itemsize == 0:
        lengths = np.zeros(n, dtype=np.int64)
    else:
        codepoints = np.ascontiguousarray(arr).view(np.uint32).reshape(n, -1)
        str_len = getattr(np, "strings", np.char).str_len
        lengths = (
            str_len(arr)
            + (codepoints >= 0x80).sum(axis=1)
            + (codepoints >= 0x800).sum(axis=1)
            + (codepoints >= 0x10000).sum(axis=1)
        ).astype(np.int64)
    if arr is not source:
        originals = source.tolist()
        actual = len("".join(map(str, originals)).encode("utf-8"))
        if actual != int(lengths.sum()):
            lengths = np.array(
                [len(str(v).encode("utf-8")) for v in originals],
                dtype=np.int64,
            )
    return lengths


def encode_string_column(values: np.ndarray, prefix_len: int) -> np.ndarray:
    """Encode a VARCHAR column into an (n, prefix_len) uint8 prefix matrix.

    One ``"".join``-encoded UTF-8 buffer for the whole column, then pure
    offset arithmetic: each value's prefix bytes are located in the flat
    buffer via the vectorized :func:`utf8_byte_lengths` cumsum and
    scattered into the output matrix with a single fancy-indexing pass --
    no per-row Python loop.
    """
    if prefix_len <= 0:
        raise KeyEncodingError(f"prefix_len must be positive, got {prefix_len}")
    source = np.asarray(values)
    n = len(source)
    out = np.zeros((n, prefix_len), dtype=np.uint8)
    if n == 0:
        return out
    # Lengths and buffer both come from the original values: fixed-width
    # unicode arrays would strip trailing NUL codepoints and desync them.
    lengths = utf8_byte_lengths(source)
    take = np.minimum(lengths, prefix_len)
    total = int(take.sum())
    if total == 0:
        return out
    buffer = np.frombuffer(
        "".join(map(str, source.tolist())).encode("utf-8"), dtype=np.uint8
    )
    starts = np.cumsum(lengths) - lengths
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(take) - take, take
    )
    rows = np.repeat(np.arange(n, dtype=np.int64), take)
    out[rows, within] = buffer[np.repeat(starts, take) + within]
    return out
