"""Key normalization: order-preserving binary key encoding and decoding."""

from repro.keys.decoder import decode_key_row, decode_segment
from repro.keys.encoding import (
    encode_fixed_column,
    encode_float,
    encode_scalar,
    encode_signed,
    encode_string,
    encode_string_column,
    encode_unsigned,
    invert_bytes,
)
from repro.keys.normalizer import (
    DEFAULT_STRING_PREFIX,
    MAX_STRING_PREFIX,
    KeyLayout,
    KeySegment,
    NormalizedKeys,
    build_layout,
    normalize_keys,
    normalized_key_for_row,
)

__all__ = [
    "decode_key_row",
    "decode_segment",
    "encode_fixed_column",
    "encode_float",
    "encode_scalar",
    "encode_signed",
    "encode_string",
    "encode_string_column",
    "encode_unsigned",
    "invert_bytes",
    "DEFAULT_STRING_PREFIX",
    "MAX_STRING_PREFIX",
    "KeyLayout",
    "KeySegment",
    "NormalizedKeys",
    "build_layout",
    "normalize_keys",
    "normalized_key_for_row",
]
