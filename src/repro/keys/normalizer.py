"""Building whole normalized keys from tables and sort specs.

A normalized key concatenates, for each ORDER BY column in order:

* one NULL indicator byte, chosen so the requested NULLS FIRST/LAST
  placement falls out of plain byte comparison, then
* the order-preserving encoding of the value (see
  :mod:`repro.keys.encoding`), inverted byte-wise for DESC.

Optionally a big-endian row-id suffix is appended.  The suffix makes any
sort of the keys stable with respect to the input order and doubles as the
gather index used to re-order the payload afterwards -- the "pointer packed
within the row" of the paper's ``OrderKey`` struct.

The result is a dense ``(n, width)`` uint8 matrix.  Comparing two rows of
the matrix with memcmp is exactly ``tuple_compare`` on the original values,
except when a VARCHAR key exceeds its prefix; then the key is "inexact" and
ties must be broken on the full strings (``NormalizedKeys.prefix_exact``
tells the sort operator whether that pass is needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KeyEncodingError
from repro.keys.encoding import (
    encode_fixed_column,
    encode_scalar,
    encode_string_column,
    fixed_column_codes,
    invert_bytes,
    utf8_byte_lengths,
)
from repro.table.table import Table
from repro.types.datatypes import DataType, TypeId
from repro.types.sortspec import SortKey, SortSpec

__all__ = [
    "DEFAULT_STRING_PREFIX",
    "MAX_STRING_PREFIX",
    "MODE_PLAIN",
    "MODE_NOBYTE",
    "MODE_FOLDED",
    "KeySegment",
    "KeyLayout",
    "NormalizedKeys",
    "build_layout",
    "normalize_keys",
    "normalized_key_for_row",
    "write_compressed_segment",
]

DEFAULT_STRING_PREFIX = 12
"""Default VARCHAR prefix length; the paper's DuckDB uses at most 12 bytes."""

MAX_STRING_PREFIX = 12
"""Upper bound DuckDB places on the runtime-chosen string prefix."""

MODE_PLAIN = "plain"
"""Full-width segment with a leading NULL indicator byte (today's layout)."""

MODE_NOBYTE = "nobyte"
"""Compressed segment: biased codes at minimal width, no NULL byte (the
column has no NULLs in any run seen so far)."""

MODE_FOLDED = "folded"
"""Compressed segment: biased codes at minimal width with the NULL
indicator folded into the value -- the extreme code point is reserved for
NULL (0 under NULLS FIRST, ``code_range`` under NULLS LAST)."""


@dataclass(frozen=True)
class KeySegment:
    """Where one sort key lives inside the normalized key row.

    Attributes:
        key: the sort key (column, direction, null placement).
        dtype: the column's logical type.
        offset: byte offset of this segment within the key row (the NULL
            byte for ``plain`` segments, the first value byte otherwise).
        value_width: bytes used by the encoded value (excludes the NULL byte).
        prefix_exact: True unless this is a VARCHAR segment whose prefix
            truncates some value (memcmp on the segment then needs a
            full-string tie-break).
        mode: ``plain`` (NULL byte + full-width encoding), ``nobyte`` or
            ``folded`` (see the module constants).  VARCHAR segments are
            always ``plain``.
        bias: for compressed modes, the minimum order-preserving code over
            the column's valid values; stored codes are relative to it.
        code_range: for compressed modes, ``max_code - bias + 1`` -- the
            number of distinct valid codes the segment can hold.  DESC is
            applied in this domain (``rel -> code_range - 1 - rel``) rather
            than by byte inversion.
    """

    key: SortKey
    dtype: DataType
    offset: int
    value_width: int
    prefix_exact: bool = True
    mode: str = MODE_PLAIN
    bias: int = 0
    code_range: int = 1

    @property
    def total_width(self) -> int:
        return self.value_width + (1 if self.mode == MODE_PLAIN else 0)

    @property
    def has_null_byte(self) -> bool:
        return self.mode == MODE_PLAIN

    @property
    def null_byte_for_null(self) -> int:
        """NULL indicator byte used for NULL values."""
        return 0x00 if self.key.nulls_first else 0x01

    @property
    def null_byte_for_valid(self) -> int:
        """NULL indicator byte used for present values."""
        return 0x01 if self.key.nulls_first else 0x00


@dataclass(frozen=True)
class KeyLayout:
    """The full normalized-key row layout for a sort spec.

    Attributes:
        segments: one :class:`KeySegment` per sort key, in spec order.
        key_width: bytes covered by the key segments (before any row id).
        row_id_width: bytes of the trailing row-id suffix (0 if none).
    """

    segments: tuple[KeySegment, ...]
    key_width: int
    row_id_width: int

    @property
    def total_width(self) -> int:
        return self.key_width + self.row_id_width

    @property
    def has_row_id(self) -> bool:
        return self.row_id_width > 0


def _max_utf8_length(values: np.ndarray) -> int:
    """Maximum UTF-8 byte length over a string column, vectorized.

    One whole-column :func:`repro.keys.encoding.utf8_byte_lengths` scan --
    the same kernel :func:`encode_string_column` uses to place its encoded
    buffer, so the prefix choice and the encoding agree by construction.
    """
    if len(values) == 0:
        return 0
    return int(utf8_byte_lengths(values).max())


def _string_prefix_for(
    values: np.ndarray, requested: int | None
) -> tuple[int, bool]:
    """Choose a VARCHAR prefix length and report whether it is exact.

    DuckDB chooses the prefix at runtime from string-length statistics,
    capped at 12 bytes.  We do the same: use the maximum UTF-8 length if it
    is <= MAX_STRING_PREFIX (making prefix comparison exact), else the cap.
    """
    max_len = max(1, _max_utf8_length(values))
    if requested is not None:
        width = requested
    else:
        width = min(max_len, MAX_STRING_PREFIX)
    return width, max_len <= width


def build_layout(
    table: Table,
    spec: SortSpec,
    string_prefix: int | None = None,
    include_row_id: bool = True,
    row_id_width: int | None = None,
) -> KeyLayout:
    """Compute the key layout for sorting ``table`` by ``spec``.

    ``string_prefix`` forces a fixed VARCHAR prefix length; by default the
    prefix is chosen per column from the data (capped at 12, like DuckDB).
    ``row_id_width`` (4 or 8) overrides the automatic row-id width, which
    the sort operator uses so every run shares one layout.
    """
    segments = []
    offset = 0
    for key in spec.keys:
        col_def = table.schema.column(key.column)
        dtype = col_def.dtype
        exact = True
        if dtype.type_id is TypeId.VARCHAR:
            # One vectorized scan chooses the width AND settles exactness;
            # normalize_keys reuses the stored flag instead of rescanning.
            width, exact = _string_prefix_for(
                table.column(key.column).data, string_prefix
            )
        else:
            assert dtype.fixed_width is not None
            width = dtype.fixed_width
        segments.append(KeySegment(key, dtype, offset, width, exact))
        offset += 1 + width
    n = table.num_rows
    suffix_width = 0
    if include_row_id:
        if row_id_width is not None:
            if row_id_width not in (4, 8):
                raise KeyEncodingError(
                    f"row_id_width must be 4 or 8, got {row_id_width}"
                )
            suffix_width = row_id_width
        else:
            suffix_width = 4 if n <= 0xFFFFFFFF else 8
    return KeyLayout(tuple(segments), offset, suffix_width)


class NormalizedKeys:
    """The normalized keys of a table: an ``(n, width)`` uint8 matrix.

    Attributes:
        layout: byte layout of each key row.
        matrix: the key bytes; ``matrix[i]`` is row ``i``'s key.
        prefix_exact: True when memcmp order on ``matrix`` equals the exact
            tuple order (no VARCHAR value was truncated by its prefix).
    """

    __slots__ = ("layout", "matrix", "prefix_exact")

    def __init__(
        self, layout: KeyLayout, matrix: np.ndarray, prefix_exact: bool
    ) -> None:
        if matrix.dtype != np.uint8 or matrix.ndim != 2:
            raise KeyEncodingError("key matrix must be 2-D uint8")
        if matrix.shape[1] != layout.total_width:
            raise KeyEncodingError(
                f"matrix width {matrix.shape[1]} != layout width "
                f"{layout.total_width}"
            )
        self.layout = layout
        self.matrix = matrix
        self.prefix_exact = prefix_exact

    def __len__(self) -> int:
        return len(self.matrix)

    @property
    def width(self) -> int:
        return self.layout.total_width

    def row_bytes(self, index: int) -> bytes:
        """Row ``index``'s key, including any row-id suffix."""
        return self.matrix[index].tobytes()

    def key_bytes(self, index: int) -> bytes:
        """Row ``index``'s key *without* the row-id suffix."""
        return self.matrix[index, : self.layout.key_width].tobytes()

    def row_ids(self) -> np.ndarray:
        """Decode the row-id suffix of every key (in current matrix order)."""
        layout = self.layout
        if not layout.has_row_id:
            raise KeyEncodingError("keys were built without a row id")
        suffix = self.matrix[:, layout.key_width :]
        unsigned = np.uint32 if layout.row_id_width == 4 else np.uint64
        big_endian = np.dtype(unsigned).newbyteorder(">")
        flat = np.ascontiguousarray(suffix).view(big_endian).reshape(-1)
        return flat.astype(np.int64)


def write_compressed_segment(
    matrix: np.ndarray,
    segment: KeySegment,
    codes: np.ndarray,
    valid: np.ndarray | None,
) -> None:
    """Write a compressed (``nobyte``/``folded``) segment's bytes.

    ``codes`` are the uint64 order-preserving codes of the column
    (:func:`repro.keys.encoding.fixed_column_codes`); ``valid`` is the
    validity mask or None for an all-valid column.  Rows where ``valid``
    is False may hold arbitrary codes (the column's NULL filler): their
    relative code may wrap during the bias subtraction, which is harmless
    because they are unconditionally overwritten with the NULL code.

    Shared by :func:`normalize_keys` and the layout-rebase path in
    :mod:`repro.keys.compression` so both agree byte-for-byte.
    """
    width = segment.value_width
    rel = codes - np.uint64(segment.bias)
    if segment.key.descending:
        rel = np.uint64(segment.code_range - 1) - rel
    if segment.mode == MODE_FOLDED:
        if segment.key.nulls_first:
            rel = rel + np.uint64(1)
            null_code = np.uint64(0)
        else:
            null_code = np.uint64(segment.code_range)
        if valid is not None and not valid.all():
            rel[~valid] = null_code
    big = np.ascontiguousarray(rel.astype(">u8")).view(np.uint8)
    start = segment.offset
    matrix[:, start : start + width] = big.reshape(len(codes), 8)[:, 8 - width :]


def normalize_keys(
    table: Table,
    spec: SortSpec,
    string_prefix: int | None = None,
    include_row_id: bool = True,
    row_id_base: int = 0,
    row_id_width: int | None = None,
    layout: KeyLayout | None = None,
) -> NormalizedKeys:
    """Encode the sort-key columns of ``table`` into normalized keys.

    This is the paper's Figure 7 applied column-by-column, vectorized with
    numpy: each key column contributes a NULL byte and its value encoding
    (inverted for DESC), and an optional big-endian row-id suffix follows.
    ``row_id_base`` offsets the generated row ids (the sort operator gives
    each run a distinct base so ids are globally unique and stable).

    When ``layout`` is given it is used as-is -- this is how the sort
    operator applies a compressed layout built from column statistics
    (:mod:`repro.keys.compression`); ``string_prefix``/``row_id_width``
    are then ignored.  Compressed segments must cover the table's values
    (``bias``/``code_range`` from a stats pass that saw this table).
    """
    if layout is None:
        layout = build_layout(
            table, spec, string_prefix, include_row_id, row_id_width
        )
    n = table.num_rows
    # The matrix is written segment-by-segment below; only NULL value
    # bytes and the row-id gap need explicit zeroing, so start from
    # uninitialized memory instead of a zeroed page.
    matrix = np.empty((n, layout.total_width), dtype=np.uint8)
    prefix_exact = True
    for segment in layout.segments:
        column = table.column(segment.key.column)
        prefix_exact = prefix_exact and segment.prefix_exact
        if not segment.has_null_byte:
            codes = fixed_column_codes(column.data, segment.dtype)
            valid = column.validity if column.has_nulls else None
            write_compressed_segment(matrix, segment, codes, valid)
            continue
        start = segment.offset
        # NULL indicator byte.
        valid = column.validity
        matrix[:, start] = np.where(
            valid,
            segment.null_byte_for_valid,
            segment.null_byte_for_null,
        )
        # Value bytes.
        if segment.dtype.type_id is TypeId.VARCHAR:
            encoded = encode_string_column(column.data, segment.value_width)
        else:
            encoded = encode_fixed_column(column.data, segment.dtype)
        if segment.key.descending:
            # In-place byte inversion -- unless the encoder returned a view
            # aliasing the column's own buffer (possible for unsigned
            # types whose big-endian cast is a no-op, e.g. BOOLEAN).
            if np.shares_memory(encoded, column.data):
                encoded = 0xFF - encoded
            else:
                np.subtract(0xFF, encoded, out=encoded)
        matrix[:, start + 1 : start + 1 + segment.value_width] = encoded
        # NULL rows get constant (zero) value bytes so all NULLs tie.
        if column.has_nulls:
            matrix[~valid, start + 1 : start + 1 + segment.value_width] = 0
    if layout.has_row_id:
        unsigned = np.uint32 if layout.row_id_width == 4 else np.uint64
        limit = 1 << (8 * layout.row_id_width)
        if row_id_base + n > limit:
            raise KeyEncodingError(
                f"row ids {row_id_base}..{row_id_base + n} overflow "
                f"{layout.row_id_width}-byte suffix"
            )
        ids = np.arange(row_id_base, row_id_base + n, dtype=unsigned)
        big_endian = ids.astype(np.dtype(unsigned).newbyteorder(">"))
        matrix[:, layout.key_width :] = (
            big_endian.view(np.uint8).reshape(n, layout.row_id_width)
        )
    return NormalizedKeys(layout, matrix, prefix_exact)


def normalized_key_for_row(
    row: tuple, spec: SortSpec, layout: KeyLayout
) -> bytes:
    """Scalar reference encoder: the normalized key of one Python tuple.

    ``row`` holds the key-column values in spec order (``None`` for NULL).
    Used by tests to cross-check the vectorized path, and by the paper's
    Figure 7 worked example.
    """
    out = bytearray()
    for value, segment in zip(row, layout.segments):
        if not segment.has_null_byte:
            out.extend(_compressed_scalar_bytes(value, segment))
            continue
        if value is None:
            out.append(segment.null_byte_for_null)
            out.extend(b"\x00" * segment.value_width)
            continue
        out.append(segment.null_byte_for_valid)
        encoded = encode_scalar(value, segment.dtype, segment.value_width)
        if segment.key.descending:
            encoded = invert_bytes(encoded)
        out.extend(encoded)
    return bytes(out)


def _compressed_scalar_bytes(value, segment: KeySegment) -> bytes:
    """Scalar mirror of :func:`write_compressed_segment` for one value."""
    code_range = segment.code_range
    if value is None:
        if segment.mode != MODE_FOLDED:
            raise KeyEncodingError(
                f"NULL in {segment.mode!r} segment {segment.key.column!r}"
            )
        stored = 0 if segment.key.nulls_first else code_range
    else:
        arr = np.array([value], dtype=segment.dtype.numpy_dtype)
        rel = int(fixed_column_codes(arr, segment.dtype)[0]) - segment.bias
        if not 0 <= rel < code_range:
            raise KeyEncodingError(
                f"value {value!r} outside compressed range of segment "
                f"{segment.key.column!r}"
            )
        if segment.key.descending:
            rel = (code_range - 1) - rel
        stored = rel + 1 if (
            segment.mode == MODE_FOLDED and segment.key.nulls_first
        ) else rel
    return stored.to_bytes(segment.value_width, "big")
