"""Building whole normalized keys from tables and sort specs.

A normalized key concatenates, for each ORDER BY column in order:

* one NULL indicator byte, chosen so the requested NULLS FIRST/LAST
  placement falls out of plain byte comparison, then
* the order-preserving encoding of the value (see
  :mod:`repro.keys.encoding`), inverted byte-wise for DESC.

Optionally a big-endian row-id suffix is appended.  The suffix makes any
sort of the keys stable with respect to the input order and doubles as the
gather index used to re-order the payload afterwards -- the "pointer packed
within the row" of the paper's ``OrderKey`` struct.

The result is a dense ``(n, width)`` uint8 matrix.  Comparing two rows of
the matrix with memcmp is exactly ``tuple_compare`` on the original values,
except when a VARCHAR key exceeds its prefix; then the key is "inexact" and
ties must be broken on the full strings (``NormalizedKeys.prefix_exact``
tells the sort operator whether that pass is needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KeyEncodingError
from repro.keys.encoding import (
    encode_fixed_column,
    encode_scalar,
    encode_string_column,
    invert_bytes,
    utf8_byte_lengths,
)
from repro.table.table import Table
from repro.types.datatypes import DataType, TypeId
from repro.types.sortspec import SortKey, SortSpec

__all__ = [
    "DEFAULT_STRING_PREFIX",
    "MAX_STRING_PREFIX",
    "KeySegment",
    "KeyLayout",
    "NormalizedKeys",
    "build_layout",
    "normalize_keys",
    "normalized_key_for_row",
]

DEFAULT_STRING_PREFIX = 12
"""Default VARCHAR prefix length; the paper's DuckDB uses at most 12 bytes."""

MAX_STRING_PREFIX = 12
"""Upper bound DuckDB places on the runtime-chosen string prefix."""


@dataclass(frozen=True)
class KeySegment:
    """Where one sort key lives inside the normalized key row.

    Attributes:
        key: the sort key (column, direction, null placement).
        dtype: the column's logical type.
        offset: byte offset of this segment's NULL byte within the key row.
        value_width: bytes used by the encoded value (excludes the NULL byte).
        prefix_exact: True unless this is a VARCHAR segment whose prefix
            truncates some value (memcmp on the segment then needs a
            full-string tie-break).
    """

    key: SortKey
    dtype: DataType
    offset: int
    value_width: int
    prefix_exact: bool = True

    @property
    def total_width(self) -> int:
        return 1 + self.value_width

    @property
    def null_byte_for_null(self) -> int:
        """NULL indicator byte used for NULL values."""
        return 0x00 if self.key.nulls_first else 0x01

    @property
    def null_byte_for_valid(self) -> int:
        """NULL indicator byte used for present values."""
        return 0x01 if self.key.nulls_first else 0x00


@dataclass(frozen=True)
class KeyLayout:
    """The full normalized-key row layout for a sort spec.

    Attributes:
        segments: one :class:`KeySegment` per sort key, in spec order.
        key_width: bytes covered by the key segments (before any row id).
        row_id_width: bytes of the trailing row-id suffix (0 if none).
    """

    segments: tuple[KeySegment, ...]
    key_width: int
    row_id_width: int

    @property
    def total_width(self) -> int:
        return self.key_width + self.row_id_width

    @property
    def has_row_id(self) -> bool:
        return self.row_id_width > 0


def _max_utf8_length(values: np.ndarray) -> int:
    """Maximum UTF-8 byte length over a string column, vectorized.

    One whole-column :func:`repro.keys.encoding.utf8_byte_lengths` scan --
    the same kernel :func:`encode_string_column` uses to place its encoded
    buffer, so the prefix choice and the encoding agree by construction.
    """
    if len(values) == 0:
        return 0
    return int(utf8_byte_lengths(values).max())


def _string_prefix_for(
    values: np.ndarray, requested: int | None
) -> tuple[int, bool]:
    """Choose a VARCHAR prefix length and report whether it is exact.

    DuckDB chooses the prefix at runtime from string-length statistics,
    capped at 12 bytes.  We do the same: use the maximum UTF-8 length if it
    is <= MAX_STRING_PREFIX (making prefix comparison exact), else the cap.
    """
    max_len = max(1, _max_utf8_length(values))
    if requested is not None:
        width = requested
    else:
        width = min(max_len, MAX_STRING_PREFIX)
    return width, max_len <= width


def build_layout(
    table: Table,
    spec: SortSpec,
    string_prefix: int | None = None,
    include_row_id: bool = True,
    row_id_width: int | None = None,
) -> KeyLayout:
    """Compute the key layout for sorting ``table`` by ``spec``.

    ``string_prefix`` forces a fixed VARCHAR prefix length; by default the
    prefix is chosen per column from the data (capped at 12, like DuckDB).
    ``row_id_width`` (4 or 8) overrides the automatic row-id width, which
    the sort operator uses so every run shares one layout.
    """
    segments = []
    offset = 0
    for key in spec.keys:
        col_def = table.schema.column(key.column)
        dtype = col_def.dtype
        exact = True
        if dtype.type_id is TypeId.VARCHAR:
            # One vectorized scan chooses the width AND settles exactness;
            # normalize_keys reuses the stored flag instead of rescanning.
            width, exact = _string_prefix_for(
                table.column(key.column).data, string_prefix
            )
        else:
            assert dtype.fixed_width is not None
            width = dtype.fixed_width
        segments.append(KeySegment(key, dtype, offset, width, exact))
        offset += 1 + width
    n = table.num_rows
    suffix_width = 0
    if include_row_id:
        if row_id_width is not None:
            if row_id_width not in (4, 8):
                raise KeyEncodingError(
                    f"row_id_width must be 4 or 8, got {row_id_width}"
                )
            suffix_width = row_id_width
        else:
            suffix_width = 4 if n <= 0xFFFFFFFF else 8
    return KeyLayout(tuple(segments), offset, suffix_width)


class NormalizedKeys:
    """The normalized keys of a table: an ``(n, width)`` uint8 matrix.

    Attributes:
        layout: byte layout of each key row.
        matrix: the key bytes; ``matrix[i]`` is row ``i``'s key.
        prefix_exact: True when memcmp order on ``matrix`` equals the exact
            tuple order (no VARCHAR value was truncated by its prefix).
    """

    __slots__ = ("layout", "matrix", "prefix_exact")

    def __init__(
        self, layout: KeyLayout, matrix: np.ndarray, prefix_exact: bool
    ) -> None:
        if matrix.dtype != np.uint8 or matrix.ndim != 2:
            raise KeyEncodingError("key matrix must be 2-D uint8")
        if matrix.shape[1] != layout.total_width:
            raise KeyEncodingError(
                f"matrix width {matrix.shape[1]} != layout width "
                f"{layout.total_width}"
            )
        self.layout = layout
        self.matrix = matrix
        self.prefix_exact = prefix_exact

    def __len__(self) -> int:
        return len(self.matrix)

    @property
    def width(self) -> int:
        return self.layout.total_width

    def row_bytes(self, index: int) -> bytes:
        """Row ``index``'s key, including any row-id suffix."""
        return self.matrix[index].tobytes()

    def key_bytes(self, index: int) -> bytes:
        """Row ``index``'s key *without* the row-id suffix."""
        return self.matrix[index, : self.layout.key_width].tobytes()

    def row_ids(self) -> np.ndarray:
        """Decode the row-id suffix of every key (in current matrix order)."""
        layout = self.layout
        if not layout.has_row_id:
            raise KeyEncodingError("keys were built without a row id")
        suffix = self.matrix[:, layout.key_width :]
        unsigned = np.uint32 if layout.row_id_width == 4 else np.uint64
        big_endian = np.dtype(unsigned).newbyteorder(">")
        flat = np.ascontiguousarray(suffix).view(big_endian).reshape(-1)
        return flat.astype(np.int64)


def normalize_keys(
    table: Table,
    spec: SortSpec,
    string_prefix: int | None = None,
    include_row_id: bool = True,
    row_id_base: int = 0,
    row_id_width: int | None = None,
) -> NormalizedKeys:
    """Encode the sort-key columns of ``table`` into normalized keys.

    This is the paper's Figure 7 applied column-by-column, vectorized with
    numpy: each key column contributes a NULL byte and its value encoding
    (inverted for DESC), and an optional big-endian row-id suffix follows.
    ``row_id_base`` offsets the generated row ids (the sort operator gives
    each run a distinct base so ids are globally unique and stable).
    """
    layout = build_layout(table, spec, string_prefix, include_row_id, row_id_width)
    n = table.num_rows
    matrix = np.zeros((n, layout.total_width), dtype=np.uint8)
    prefix_exact = True
    for segment in layout.segments:
        column = table.column(segment.key.column)
        start = segment.offset
        # NULL indicator byte.
        valid = column.validity
        matrix[:, start] = np.where(
            valid,
            segment.null_byte_for_valid,
            segment.null_byte_for_null,
        )
        # Value bytes.
        if segment.dtype.type_id is TypeId.VARCHAR:
            encoded = encode_string_column(column.data, segment.value_width)
            # Exactness was settled by the layout's single prefix scan.
            prefix_exact = prefix_exact and segment.prefix_exact
        else:
            encoded = encode_fixed_column(column.data, segment.dtype)
        if segment.key.descending:
            encoded = 0xFF - encoded
        matrix[:, start + 1 : start + 1 + segment.value_width] = encoded
        # NULL rows get constant (zero) value bytes so all NULLs tie.
        if column.has_nulls:
            matrix[~valid, start + 1 : start + 1 + segment.value_width] = 0
    if layout.has_row_id:
        unsigned = np.uint32 if layout.row_id_width == 4 else np.uint64
        limit = 1 << (8 * layout.row_id_width)
        if row_id_base + n > limit:
            raise KeyEncodingError(
                f"row ids {row_id_base}..{row_id_base + n} overflow "
                f"{layout.row_id_width}-byte suffix"
            )
        ids = np.arange(row_id_base, row_id_base + n, dtype=unsigned)
        big_endian = ids.astype(np.dtype(unsigned).newbyteorder(">"))
        matrix[:, layout.key_width :] = (
            big_endian.view(np.uint8).reshape(n, layout.row_id_width)
        )
    return NormalizedKeys(layout, matrix, prefix_exact)


def normalized_key_for_row(
    row: tuple, spec: SortSpec, layout: KeyLayout
) -> bytes:
    """Scalar reference encoder: the normalized key of one Python tuple.

    ``row`` holds the key-column values in spec order (``None`` for NULL).
    Used by tests to cross-check the vectorized path, and by the paper's
    Figure 7 worked example.
    """
    out = bytearray()
    for value, segment in zip(row, layout.segments):
        if value is None:
            out.append(segment.null_byte_for_null)
            out.extend(b"\x00" * segment.value_width)
            continue
        out.append(segment.null_byte_for_valid)
        encoded = encode_scalar(value, segment.dtype, segment.value_width)
        if segment.key.descending:
            encoded = invert_bytes(encoded)
        out.extend(encoded)
    return bytes(out)
