"""Why systems sort implicitly: RLE compression and zone-map pruning.

Section II lists two implicit consumers of sorting besides joins:
"improving run-length encoding compression [17] and zone map [18]
effectiveness".  This module quantifies both for a column, so the benefit
of sorting a table can be *measured*:

* :func:`rle_runs` / :func:`rle_compression_ratio` -- run-length encoding
  statistics: a sorted column collapses equal neighbours into runs.
* :func:`zone_map_stats` / :func:`zone_map_selectivity` -- per-block
  min/max "small materialized aggregates" (Moerkotte): on sorted data the
  zones are disjoint, so a point or range predicate prunes almost all
  blocks.

The ``sorting_benefit`` helper compares both metrics before and after
sorting -- used by `examples/` and the ablation tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.table.column import ColumnVector

__all__ = [
    "rle_runs",
    "rle_compression_ratio",
    "ZoneMap",
    "zone_map_stats",
    "zone_map_selectivity",
    "SortingBenefit",
    "sorting_benefit",
]


def rle_runs(column: ColumnVector) -> int:
    """Number of runs of equal values (NULLs form runs too)."""
    n = len(column)
    if n == 0:
        return 0
    data = column.data
    validity = column.validity
    if column.dtype.is_variable_width:
        changes = sum(
            1
            for i in range(1, n)
            if (validity[i] != validity[i - 1])
            or (validity[i] and data[i] != data[i - 1])
        )
        return changes + 1
    value_change = data[1:] != data[:-1]
    validity_change = validity[1:] != validity[:-1]
    both_valid = validity[1:] & validity[:-1]
    changed = validity_change | (both_valid & value_change)
    return int(changed.sum()) + 1


def rle_compression_ratio(column: ColumnVector) -> float:
    """rows / runs: how much RLE would shrink the column (higher=better)."""
    n = len(column)
    if n == 0:
        return 1.0
    return n / rle_runs(column)


@dataclass(frozen=True)
class ZoneMap:
    """Per-block min/max (NULL-free blocks only carry values)."""

    block_size: int
    mins: tuple
    maxs: tuple
    has_value: tuple  # block contains at least one non-NULL value

    @property
    def num_blocks(self) -> int:
        return len(self.mins)

    def blocks_matching(self, low, high) -> int:
        """Blocks whose [min, max] intersects the query range [low, high]."""
        count = 0
        for block_min, block_max, present in zip(
            self.mins, self.maxs, self.has_value
        ):
            if not present:
                continue
            if block_max >= low and block_min <= high:
                count += 1
        return count


def zone_map_stats(column: ColumnVector, block_size: int = 1024) -> ZoneMap:
    """Build the zone map (per-block min/max) of a column."""
    if block_size <= 0:
        raise ReproError("block_size must be positive")
    n = len(column)
    mins, maxs, present = [], [], []
    for start in range(0, max(n, 1), block_size):
        stop = min(start + block_size, n)
        if start >= n:
            break
        validity = column.validity[start:stop]
        if not validity.any():
            mins.append(None)
            maxs.append(None)
            present.append(False)
            continue
        if column.dtype.is_variable_width:
            values = [
                column.value(i)
                for i in range(start, stop)
                if column.validity[i]
            ]
            mins.append(min(values))
            maxs.append(max(values))
        else:
            values = column.data[start:stop][validity]
            mins.append(values.min())
            maxs.append(values.max())
        present.append(True)
    return ZoneMap(block_size, tuple(mins), tuple(maxs), tuple(present))


def zone_map_selectivity(
    column: ColumnVector, low, high, block_size: int = 1024
) -> float:
    """Fraction of blocks a range scan must read (lower = better pruning)."""
    zone_map = zone_map_stats(column, block_size)
    if zone_map.num_blocks == 0:
        return 0.0
    return zone_map.blocks_matching(low, high) / zone_map.num_blocks


@dataclass(frozen=True)
class SortingBenefit:
    """Before/after-sorting comparison of both metrics for one column."""

    rle_ratio_unsorted: float
    rle_ratio_sorted: float
    zone_selectivity_unsorted: float
    zone_selectivity_sorted: float

    @property
    def rle_improvement(self) -> float:
        return self.rle_ratio_sorted / max(self.rle_ratio_unsorted, 1e-12)

    @property
    def pruning_improvement(self) -> float:
        return self.zone_selectivity_unsorted / max(
            self.zone_selectivity_sorted, 1e-12
        )


def sorting_benefit(
    column: ColumnVector,
    probe_low,
    probe_high,
    block_size: int = 1024,
) -> SortingBenefit:
    """Measure RLE and zone-map gains of sorting one column.

    ``probe_low``/``probe_high`` define the range predicate used for the
    zone-map selectivity comparison.
    """
    order = np.argsort(
        np.where(column.validity, column.data, column.data.max(initial=0)),
        kind="stable",
    ) if not column.dtype.is_variable_width else np.array(
        sorted(
            range(len(column)),
            key=lambda i: (not column.validity[i], column.value(i) or ""),
        ),
        dtype=np.int64,
    )
    sorted_column = column.take(order)
    return SortingBenefit(
        rle_ratio_unsorted=rle_compression_ratio(column),
        rle_ratio_sorted=rle_compression_ratio(sorted_column),
        zone_selectivity_unsorted=zone_map_selectivity(
            column, probe_low, probe_high, block_size
        ),
        zone_selectivity_sorted=zone_map_selectivity(
            sorted_column, probe_low, probe_high, block_size
        ),
    )
