"""Analyses of sorting's implicit benefits: RLE and zone maps."""

from repro.analysis.compression import (
    SortingBenefit,
    ZoneMap,
    rle_compression_ratio,
    rle_runs,
    sorting_benefit,
    zone_map_selectivity,
    zone_map_stats,
)

__all__ = [
    "SortingBenefit",
    "ZoneMap",
    "rle_compression_ratio",
    "rle_runs",
    "sorting_benefit",
    "zone_map_selectivity",
    "zone_map_stats",
]
