"""Micro-benchmark data distributions (paper, Section III-A).

The paper's micro-benchmarks sort columns of unsigned 32-bit integers drawn
from two families:

* **Random** -- uniform over the full u32 range; "virtually no duplicate
  values in each column".
* **CorrelatedP** -- 128 unique values per column; the first column is
  uniform; for subsequent columns, *P* is the probability that two tuples
  equal in column C are also equal in column C+1.

For CorrelatedP we generate column C+1 by copying a deterministic function
of column C with probability ``sqrt(P)`` and drawing a fresh uniform value
otherwise.  Two rows equal in C are then equal in C+1 with probability
``sqrt(P)^2 + (small collision terms) ~= P``, matching the paper's stated
conditional-equality semantics; P = 1 degenerates to an exact functional
copy and P = 0 to independence, as required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = [
    "CORRELATED_UNIQUE_VALUES",
    "Distribution",
    "random_distribution",
    "correlated_distribution",
    "PAPER_GRID",
    "generate_key_columns",
]

CORRELATED_UNIQUE_VALUES = 128
"""Unique values per column in the Correlated distributions (paper value)."""


@dataclass(frozen=True)
class Distribution:
    """A named micro-benchmark distribution.

    Attributes:
        name: display name, e.g. ``"Random"`` or ``"Correlated0.5"``.
        correlation: ``None`` for Random, else the paper's P.
    """

    name: str
    correlation: float | None

    @property
    def is_random(self) -> bool:
        return self.correlation is None


def random_distribution() -> Distribution:
    return Distribution("Random", None)


def correlated_distribution(p: float) -> Distribution:
    if not 0.0 <= p <= 1.0:
        raise ReproError(f"correlation must be in [0, 1], got {p}")
    label = f"{p:g}"
    return Distribution(f"Correlated{label}", p)


PAPER_GRID = (
    random_distribution(),
    correlated_distribution(0.0),
    correlated_distribution(0.5),
    correlated_distribution(1.0),
)
"""The distribution grid our figures sweep (the paper sweeps a P grid)."""


def generate_key_columns(
    distribution: Distribution,
    num_rows: int,
    num_columns: int,
    seed: int = 42,
) -> np.ndarray:
    """Generate an ``(num_rows, num_columns)`` uint32 key matrix.

    Column ``c`` of the result corresponds to key column ``c`` of the
    ORDER BY; row ``r`` is one tuple's key values.
    """
    if num_rows < 0 or num_columns <= 0:
        raise ReproError(
            f"need num_rows >= 0 and num_columns > 0, "
            f"got {num_rows}, {num_columns}"
        )
    rng = np.random.default_rng(seed)
    out = np.empty((num_rows, num_columns), dtype=np.uint32)
    if distribution.is_random:
        # Uniform over the full u32 range: virtually no duplicates.
        for c in range(num_columns):
            out[:, c] = rng.integers(
                0, 2**32, size=num_rows, dtype=np.uint32
            )
        return out

    unique = CORRELATED_UNIQUE_VALUES
    copy_probability = math.sqrt(distribution.correlation)
    # First column: uniform over the 128 values.  Values are spread over
    # the u32 range (multiplied out) so byte-level encodings differ early.
    spread = np.uint32(2**32 // unique)
    out[:, 0] = rng.integers(0, unique, size=num_rows, dtype=np.uint32) * spread
    for c in range(1, num_columns):
        fresh = rng.integers(0, unique, size=num_rows, dtype=np.uint32) * spread
        # Deterministic function of the previous column: a multiplicative
        # shuffle of its value keeps 128 unique values per column.
        derived = (out[:, c - 1] // spread * np.uint32(73) % np.uint32(unique)) * spread
        copy_mask = rng.random(num_rows) < copy_probability
        out[:, c] = np.where(copy_mask, derived, fresh)
    return out
