"""Workload generators: micro-benchmark distributions and TPC-DS tables."""

from repro.workloads.distributions import (
    CORRELATED_UNIQUE_VALUES,
    PAPER_GRID,
    Distribution,
    correlated_distribution,
    generate_key_columns,
    random_distribution,
)
from repro.workloads.tpcds import (
    PAPER_CARDINALITIES,
    catalog_sales,
    customer,
    scaled_rows,
)

__all__ = [
    "CORRELATED_UNIQUE_VALUES",
    "PAPER_GRID",
    "Distribution",
    "correlated_distribution",
    "generate_key_columns",
    "random_distribution",
    "PAPER_CARDINALITIES",
    "catalog_sales",
    "customer",
    "scaled_rows",
]
