"""Workload generators: micro-benchmark distributions and TPC-DS tables."""

from repro.workloads.distributions import (
    CORRELATED_UNIQUE_VALUES,
    PAPER_GRID,
    Distribution,
    correlated_distribution,
    generate_key_columns,
    random_distribution,
)
from repro.workloads.tpcds import (
    PAPER_CARDINALITIES,
    catalog_sales,
    customer,
    scaled_rows,
)

# Imported after tpcds: the scenario catalog builds its TPC-DS entries
# on top of this package's synthesizers.
from repro.workloads.scenarios import (  # noqa: E402
    SCENARIOS,
    VALUE_GENERATORS,
    ColumnSpec,
    Scenario,
    scenario_table,
)

__all__ = [
    "SCENARIOS",
    "VALUE_GENERATORS",
    "ColumnSpec",
    "Scenario",
    "scenario_table",
    "CORRELATED_UNIQUE_VALUES",
    "PAPER_GRID",
    "Distribution",
    "correlated_distribution",
    "generate_key_columns",
    "random_distribution",
    "PAPER_CARDINALITIES",
    "catalog_sales",
    "customer",
    "scaled_rows",
]
