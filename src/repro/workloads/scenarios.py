"""Scenario-diversity workload suite: the sort paths' stress catalog.

Every benchmark recorded before this module ran mostly uniform-random
int64, so the heuristic dispatch (radix vs lexsort vs argsort), the
replacement-selection probe, offset-value coding, and key compression
were never exercised on the skewed, near-sorted, duplicate-heavy, and
string-heavy inputs the paper's TPC-DS evaluation targets.  This module
is the fix: a seed-deterministic generator suite, each input shape
declared as a :class:`Scenario`, shared by the differential oracle
tests, the bench matrix (``benchmarks/bench_matrix.py``), and the
regression gate (``benchmarks/regress.py``).

Two layers:

* **Value generators** -- pure functions ``(rng, n, **params) ->
  ndarray`` producing one column's values.  Every generator takes an
  explicit :class:`numpy.random.Generator`; none touches module-level
  RNG state, so a scenario built twice from the same seed is
  byte-identical regardless of what ran in between.
* **Scenarios** -- declarative :class:`Scenario` specs naming the
  columns (generator + parameters + NULL fraction), the ORDER BY the
  matrix sweeps, and a human description.  ``Scenario.table(n, seed)``
  materializes the input; ``Scenario.sql(limit, offset)`` renders the
  matching query for the engine/service paths.

The catalog mirrors how the run-generation literature (and the paper's
Section II) classifies inputs -- see each scenario's description -- and
folds in the paper's TPC-DS sorts via :mod:`repro.workloads.tpcds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import ReproError
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import BIGINT, DOUBLE, VARCHAR
from repro.types.schema import ColumnDef, Schema
from repro.workloads import tpcds

__all__ = [
    "SCENARIOS",
    "VALUE_GENERATORS",
    "ColumnSpec",
    "Scenario",
    "dup_heavy_values",
    "long_string_values",
    "near_sorted_values",
    "reverse_values",
    "scenario_table",
    "uniform_values",
    "zipf_dups_values",
]


# ---------------------------------------------------------------------- #
# Value generators (all take an explicit rng; no module-level state)
# ---------------------------------------------------------------------- #


def uniform_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Independent draws over the full int64 range: the baseline where
    replacement selection only reaches the classic ~2x run length."""
    return rng.integers(-(1 << 62), 1 << 62, n).astype(np.int64)


def near_sorted_values(
    rng: np.random.Generator,
    n: int,
    jitter: int = 64,
    displaced_fraction: float = 0.01,
) -> np.ndarray:
    """Sorted values with bounded local jitter and sparse far outliers.

    An already-sorted sequence perturbed two ways at once: bounded local
    jitter (every row within ``jitter`` positions of its sorted place,
    like a log with bounded clock skew) plus a sparse fraction of rows
    displaced arbitrarily far (late arrivals).  Replacement selection
    turns this into a handful of giant runs.
    """
    base = np.arange(n, dtype=np.int64)
    keys = base + rng.integers(-jitter, jitter + 1, n)
    displaced = rng.random(n) < displaced_fraction
    keys[displaced] = rng.integers(0, n, int(displaced.sum()))
    return base[np.argsort(keys, kind="stable")]


def reverse_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Strictly descending: replacement selection's worst case (every
    incoming row is below the fence, so runs cannot grow)."""
    del rng  # deterministic scenario; signature kept uniform
    return np.arange(n, 0, -1, dtype=np.int64)


def zipf_dups_values(
    rng: np.random.Generator, n: int, alpha: float = 1.3
) -> np.ndarray:
    """Zipf-skewed duplicate-heavy keys (clipped to 10k distinct values).

    A few values dominate, so the leading-byte histogram is skewed (the
    dispatch heuristic's lexsort guard) and merge tie-handling (OVC
    ties, stable row ids) is exercised hard.
    """
    return np.minimum(rng.zipf(alpha, n), 10_000).astype(np.int64)


def dup_heavy_values(
    rng: np.random.Generator, n: int, distinct: int = 16
) -> np.ndarray:
    """Uniform draws from a tiny domain: almost every key is a duplicate.

    Unlike the Zipf scenario no value dominates, but with ``distinct``
    values nearly every comparison ties -- offset-value coding's best
    case, and the duplicate/skew stress Do & Graefe (arXiv 2209.08420)
    motivate for it.
    """
    return rng.integers(0, distinct, n).astype(np.int64)


def long_string_values(
    rng: np.random.Generator,
    n: int,
    shared_prefix: int = 16,
    tail: int = 12,
) -> np.ndarray:
    """UTF-8 strings longer than the 12-byte normalized-key prefix.

    Each value is ``shared_prefix`` bytes drawn from a handful of common
    stems followed by a random ``tail`` -- so the truncated prefix ties
    constantly and only the adaptive tie-break re-encoding
    (:mod:`repro.sort.stringsort`) makes the vector path exact.
    """
    stems = np.array(
        [f"shared-prefix-{c:02d}-"[:shared_prefix] for c in range(4)],
        dtype=object,
    )
    letters = np.array(list("abcdefghijklmnopqrstuvwxyz"), dtype=object)
    tails = letters[rng.integers(0, len(letters), (n, tail))]
    values = stems[rng.integers(0, len(stems), n)]
    for position in range(tail):
        values = values + tails[:, position]
    return values


def float_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform doubles, for the mixed-null scenario's float column."""
    return rng.uniform(-1e6, 1e6, n)


VALUE_GENERATORS: Mapping[str, Callable] = {
    "uniform": uniform_values,
    "near_sorted": near_sorted_values,
    "reverse": reverse_values,
    "zipf_dups": zipf_dups_values,
    "dup_heavy": dup_heavy_values,
    "long_string": long_string_values,
    "float": float_values,
}
"""Registry of value generators; :class:`ColumnSpec` names one of these."""


# ---------------------------------------------------------------------- #
# Declarative scenario specs
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ColumnSpec:
    """One generated column: generator name, parameters, NULL fraction."""

    name: str
    generator: str
    params: tuple[tuple[str, object], ...] = ()
    null_fraction: float = 0.0

    def build(self, rng: np.random.Generator, n: int) -> ColumnVector:
        if self.generator not in VALUE_GENERATORS:
            raise ReproError(f"unknown value generator {self.generator!r}")
        values = VALUE_GENERATORS[self.generator](rng, n, **dict(self.params))
        validity = None
        if self.null_fraction > 0:
            validity = rng.random(n) >= self.null_fraction
        values = np.asarray(values)
        if values.dtype == object:
            if validity is not None:
                values = values.copy()
                values[~validity] = ""
            return ColumnVector(VARCHAR, values, validity)
        if values.dtype.kind == "f":
            if validity is not None:
                values = values.copy()
                values[~validity] = 0.0
            return ColumnVector(DOUBLE, values.astype(np.float64), validity)
        values = values.astype(np.int64)
        if validity is not None:
            values = values.copy()
            values[~validity] = 0
        return ColumnVector(BIGINT, values, validity)


@dataclass(frozen=True)
class Scenario:
    """A declarative workload: named generated columns plus an ORDER BY.

    ``table(n, seed)`` is seed-deterministic: one
    ``np.random.default_rng(seed)`` drives every column in declaration
    order, so the same ``(name, n, seed)`` triple always produces the
    same bytes.  ``builder`` overrides column generation for scenarios
    whose tables come from elsewhere (the TPC-DS synthesizers).
    """

    name: str
    description: str
    order_by: str
    columns: tuple[ColumnSpec, ...] = ()
    builder: Callable[[np.random.Generator, int], Table] | None = None
    select: str = "*"
    payload: bool = field(default=True)

    def table(self, n: int, seed: int = 0) -> Table:
        """Materialize ``n`` rows of this scenario, deterministically."""
        rng = np.random.default_rng(seed)
        if self.builder is not None:
            return self.builder(rng, n)
        columns = {spec.name: spec.build(rng, n) for spec in self.columns}
        if self.payload:
            columns["p"] = ColumnVector(
                BIGINT, rng.integers(0, 1 << 62, n).astype(np.int64)
            )
        schema = Schema(
            tuple(
                ColumnDef(name, column.dtype)
                for name, column in columns.items()
            )
        )
        return Table(schema, list(columns.values()))

    def sql(self, limit: int | None = None, offset: int = 0) -> str:
        """The scenario's query against a table registered as ``t``."""
        text = f"SELECT {self.select} FROM t ORDER BY {self.order_by}"
        if limit is not None:
            text += f" LIMIT {limit}"
        if offset:
            text += f" OFFSET {offset}"
        return text


def _tpcds_catalog(rng: np.random.Generator, n: int) -> Table:
    return tpcds.catalog_sales(n, seed=int(rng.integers(0, 1 << 31)))


def _tpcds_customer(rng: np.random.Generator, n: int) -> Table:
    return tpcds.customer(n, seed=int(rng.integers(0, 1 << 31)))


_INT_KEY = (ColumnSpec("a", "uniform"),)

SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "uniform",
            "independent int64 draws over the full range; the baseline "
            "every earlier benchmark measured",
            "a, p",
            (ColumnSpec("a", "uniform"),),
        ),
        Scenario(
            "zipf_skew",
            "Zipf-skewed duplicate-heavy int64 keys; a few values "
            "dominate (skewed leading byte, heavy merge ties)",
            "a, p",
            (ColumnSpec("a", "zipf_dups"),),
        ),
        Scenario(
            "near_sorted",
            "already-sorted int64 with bounded jitter plus sparse far "
            "displacements; replacement selection's best case",
            "a, p",
            (ColumnSpec("a", "near_sorted", (("jitter", 64),)),),
        ),
        Scenario(
            "reverse",
            "strictly descending int64; replacement selection's worst "
            "case",
            "a, p",
            (ColumnSpec("a", "reverse"),),
        ),
        Scenario(
            "dup_heavy",
            "uniform draws from 16 distinct int64 values; nearly every "
            "comparison ties (offset-value coding's best case)",
            "a, p",
            (ColumnSpec("a", "dup_heavy", (("distinct", 16),)),),
        ),
        Scenario(
            "long_string",
            "strings sharing 16-byte stems and exceeding the 12-byte "
            "key prefix; exact order needs tie-break re-encoding",
            "s, p",
            (ColumnSpec("s", "long_string"),),
        ),
        Scenario(
            "mixed_null",
            "int64 + double + string keys, each several percent NULL; "
            "exercises NULL ordering and NULL-byte folding",
            "a NULLS FIRST, f DESC, s",
            (
                ColumnSpec("a", "zipf_dups", null_fraction=0.08),
                ColumnSpec("f", "float", null_fraction=0.05),
                ColumnSpec("s", "long_string", null_fraction=0.05),
            ),
        ),
        Scenario(
            "tpcds_catalog",
            "synthetic TPC-DS catalog_sales sorted by four nullable "
            "low-cardinality surrogate keys (the paper's Section VII-C)",
            "cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity",
            builder=_tpcds_catalog,
        ),
        Scenario(
            "tpcds_customer",
            "synthetic TPC-DS customer sorted by the two VARCHAR name "
            "columns (the paper's Section VII-D string sort)",
            "c_last_name, c_first_name, c_customer_sk",
            builder=_tpcds_customer,
        ),
    )
}
"""The scenario catalog, keyed by name (see ``docs/sort-pipeline.md``)."""


def scenario_table(name: str, n: int, seed: int = 0) -> Table:
    """Materialize a catalog scenario's table (back-compat entry point).

    For the int64 scenarios this reproduces the original two-column
    ``(a, p)`` shape the PR 7/8 benchmarks were recorded against --
    byte-identical for the same seed: one ``default_rng(seed)`` draws
    the key column first and the payload second.
    """
    if name in SCENARIOS:
        return SCENARIOS[name].table(n, seed)
    # The pre-catalog spelling of the Zipf scenario, kept for recorded
    # benchmark artifacts that name it "zipf_dups".
    if name == "zipf_dups":
        return SCENARIOS["zipf_skew"].table(n, seed)
    raise ReproError(f"unknown scenario {name!r}")
