"""Synthetic TPC-DS tables for the end-to-end benchmarks.

The paper's Sections VII-C/D sort the two TPC-DS tables below, generated
with ``dsdgen``.  ``dsdgen`` is not redistributable, so this module
synthesizes tables with the distributional properties that matter for
sorting -- column cardinalities, NULL fractions, value ranges, and string
length distributions -- at any row count (see DESIGN.md, substitution
table).

* ``catalog_sales`` -- the largest TPC-DS fact table.  The paper sorts it
  by up to four low-cardinality surrogate-key columns
  (``cs_warehouse_sk``, ``cs_ship_mode_sk``, ``cs_promo_sk``,
  ``cs_quantity``), selecting ``cs_item_sk``; the key columns contain
  NULLs (foreign keys in TPC-DS may be NULL).
* ``customer`` -- sorted either by three integer birth-date columns or by
  two VARCHAR name columns, selecting ``c_customer_sk``.

``PAPER_CARDINALITIES`` records the true TPC-DS row counts per scale
factor (the paper's Table IV); generators accept any ``num_rows`` so
benchmarks can run scaled down.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import INTEGER, VARCHAR
from repro.types.schema import ColumnDef, Schema

__all__ = [
    "PAPER_CARDINALITIES",
    "catalog_sales",
    "customer",
    "scaled_rows",
]

PAPER_CARDINALITIES = {
    ("catalog_sales", 10): 14_401_261,
    ("catalog_sales", 100): 143_997_065,
    ("customer", 100): 2_000_000,
    ("customer", 300): 5_000_000,
}
"""TPC-DS cardinalities at the paper's scale factors (its Table IV)."""


def scaled_rows(table: str, scale_factor: int, scale_down: int) -> int:
    """Paper cardinality divided by the reproduction's scale-down factor."""
    key = (table, scale_factor)
    if key not in PAPER_CARDINALITIES:
        raise ReproError(
            f"no paper cardinality for {table} at SF{scale_factor}"
        )
    if scale_down <= 0:
        raise ReproError("scale_down must be positive")
    return max(1, PAPER_CARDINALITIES[key] // scale_down)


def _nullable_int_column(
    rng: np.random.Generator,
    num_rows: int,
    low: int,
    high: int,
    null_fraction: float,
) -> ColumnVector:
    values = rng.integers(low, high + 1, size=num_rows).astype(np.int32)
    validity = None
    if null_fraction > 0:
        validity = rng.random(num_rows) >= null_fraction
        values[~validity] = 0
    return ColumnVector(INTEGER, values, validity)


def catalog_sales(
    num_rows: int, scale_factor: int = 10, seed: int = 42
) -> Table:
    """A synthetic ``catalog_sales`` slice with the paper's sort columns.

    Cardinalities follow TPC-DS: the surrogate keys reference small
    dimension tables whose sizes grow sub-linearly with the scale factor,
    which is what makes multi-column comparisons tie so often.
    """
    if num_rows < 0:
        raise ReproError("num_rows must be non-negative")
    rng = np.random.default_rng(seed)
    # Dimension cardinalities, approximating dsdgen's scaling.
    warehouses = 10 if scale_factor <= 10 else 15
    ship_modes = 20
    promotions = 450 if scale_factor <= 10 else 1000
    items = 102_000 if scale_factor <= 10 else 204_000
    columns = {
        "cs_warehouse_sk": _nullable_int_column(
            rng, num_rows, 1, warehouses, 0.005
        ),
        "cs_ship_mode_sk": _nullable_int_column(
            rng, num_rows, 1, ship_modes, 0.005
        ),
        "cs_promo_sk": _nullable_int_column(
            rng, num_rows, 1, promotions, 0.005
        ),
        "cs_quantity": _nullable_int_column(rng, num_rows, 1, 100, 0.005),
        "cs_item_sk": ColumnVector(
            INTEGER, rng.integers(1, items + 1, size=num_rows).astype(np.int32)
        ),
    }
    schema = Schema(tuple(ColumnDef(n, INTEGER) for n in columns))
    return Table(schema, list(columns.values()))


_FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
    "Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony",
    "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly",
    "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth",
    "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca",
    "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob",
    "Kathleen", "Gary", "Amy", "Nicholas", "Angela", "Eric", "Shirley",
    "Jonathan", "Anna", "Stephen", "Brenda", "Larry", "Pamela", "Justin",
    "Emma", "Scott", "Nicole", "Brandon", "Helen",
]

_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez",
]


def customer(num_rows: int, scale_factor: int = 100, seed: int = 42) -> Table:
    """A synthetic ``customer`` slice with birth-date and name columns.

    Names draw from fixed pools (heavy duplication, like real names and
    like dsdgen's name tables); birth dates are uniform over 1924-1992;
    each demographic column is NULL for a few percent of customers, as in
    TPC-DS.
    """
    if num_rows < 0:
        raise ReproError("num_rows must be non-negative")
    rng = np.random.default_rng(seed)
    null_p = 0.035  # dsdgen leaves a few percent of demographics NULL

    def pick_names(pool: list[str]) -> ColumnVector:
        pool_array = np.array(pool, dtype=object)
        choices = rng.integers(0, len(pool), size=num_rows)
        validity = rng.random(num_rows) >= null_p
        data = pool_array[choices]
        data[~validity] = ""
        return ColumnVector(VARCHAR, data, validity)

    columns = {
        "c_customer_sk": ColumnVector(
            INTEGER, np.arange(1, num_rows + 1, dtype=np.int32)
        ),
        "c_birth_year": _nullable_int_column(rng, num_rows, 1924, 1992, null_p),
        "c_birth_month": _nullable_int_column(rng, num_rows, 1, 12, null_p),
        "c_birth_day": _nullable_int_column(rng, num_rows, 1, 28, null_p),
        "c_last_name": pick_names(_LAST_NAMES),
        "c_first_name": pick_names(_FIRST_NAMES),
    }
    dtypes = {
        "c_customer_sk": INTEGER,
        "c_birth_year": INTEGER,
        "c_birth_month": INTEGER,
        "c_birth_day": INTEGER,
        "c_last_name": VARCHAR,
        "c_first_name": VARCHAR,
    }
    schema = Schema(
        tuple(ColumnDef(name, dtypes[name]) for name in columns)
    )
    return Table(schema, list(columns.values()))
