"""Exception hierarchy for the rowsort reproduction library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  The hierarchy mirrors where in the stack the failure happened:
type system, storage, sorting, simulator, or the mini SQL engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TypeError_(ReproError):
    """A value or column does not match its declared logical type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class SchemaError(ReproError):
    """A schema is malformed or a referenced column does not exist."""


class ConversionError(ReproError):
    """A value cannot be converted between representations (e.g. DSM/NSM)."""


class SortError(ReproError):
    """A sort operator was configured or driven incorrectly."""


class SortCancelledError(SortError):
    """The sort was cancelled before it produced a result."""


class SpillError(SortError):
    """Base class for external-sort spill failures.

    Every spill failure names the run file it concerns via ``path`` so
    callers (and operators) can report *which* spill file went bad.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        if path is not None and path not in message:
            message = f"{message} [spill file: {path}]"
        super().__init__(message)
        self.path = path


class SpillCorruptionError(SpillError):
    """A spill file failed an integrity check.

    Raised for a bad magic number, an unsupported format version, a
    truncated section, or a CRC32 mismatch -- instead of letting the
    corruption surface as an opaque numpy shape/decode error mid-merge.
    """


class SpillIOError(SpillError):
    """The operating system failed a spill read/write we could not mask."""


class SpillCapacityError(SpillIOError):
    """No spill target could absorb a run (e.g. persistent ``ENOSPC``)."""


class KeyEncodingError(ReproError):
    """Key normalization failed (unsupported type, bad prefix length, ...)."""


class SimulationError(ReproError):
    """The hardware simulator was misconfigured or misused."""


class OutOfMemoryError(SimulationError):
    """The simulated arena ran out of address space."""


class ServiceError(ReproError):
    """The concurrent query service failed a request."""


class ServiceOverloadError(ServiceError):
    """The service refused (or shed) a query because it is saturated.

    Raised instead of queueing without bound: the admission queue was
    full, the memory governor stayed starved past the admission
    timeout, or the query was load-shed to make room for higher
    priority work.  ``retry_after_s`` is the server's estimate of when
    capacity will free up; ``shed`` distinguishes a query evicted from
    the queue from one rejected at the door.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 0.0,
        shed: bool = False,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.shed = shed


class ServiceShutdownError(ServiceError):
    """The service is shutting down and no longer accepts queries."""


class QueryTimeoutError(ServiceError):
    """A query's deadline expired before it produced a result."""


class EngineError(ReproError):
    """The mini query engine failed to plan or execute a query."""


class ParseError(EngineError):
    """The SQL subset parser rejected a query string."""


class BindError(EngineError):
    """A query referenced an unknown table or column."""
