"""Reproduction of *These Rows Are Made for Sorting and That's Just What
We'll Do* (Kuiper & Mühleisen, ICDE 2023).

The library has two faces:

* the **production face** -- a usable relational sort built the way the
  paper builds DuckDB's: normalized keys, radix sort / pdqsort run
  generation, cascaded Merge-Path merging, NSM payload handling, and a
  small vectorized SQL engine around it
  (:mod:`repro.table`, :mod:`repro.keys`, :mod:`repro.sort`,
  :mod:`repro.engine`);
* the **study face** -- an instrumented hardware simulator (caches, branch
  predictors, cost model) on which faithful ports of the paper's sorting
  approaches run, reproducing the micro-architectural experiments
  (:mod:`repro.sim`, :mod:`repro.simsort`, :mod:`repro.systems`,
  :mod:`repro.workloads`, :mod:`repro.bench`).

Quickstart::

    import repro

    table = repro.Table.from_pydict(
        {"country": ["NL", "DE", None], "year": [1992, 1968, 1990]}
    )
    result = repro.sort_table(table, "country DESC NULLS LAST, year ASC")
"""

from repro.aggregate import Aggregate, group_by
from repro.errors import (
    ReproError,
    SortCancelledError,
    SortError,
    SpillCapacityError,
    SpillCorruptionError,
    SpillError,
    SpillIOError,
)
from repro.join import ie_join, inequality_join, merge_join
from repro.keys import normalize_keys
from repro.sort import (
    SortConfig,
    SortOperator,
    external_sort_table,
    sort_table,
    top_n,
)
from repro.table import DataChunk, Table, read_csv, write_csv
from repro.window import WindowFunction, WindowSpec, window
from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    VARCHAR,
    NullOrder,
    Order,
    Schema,
    SortKey,
    SortSpec,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "group_by",
    "ReproError",
    "SortCancelledError",
    "SortError",
    "SpillCapacityError",
    "SpillCorruptionError",
    "SpillError",
    "SpillIOError",
    "ie_join",
    "inequality_join",
    "merge_join",
    "read_csv",
    "write_csv",
    "WindowFunction",
    "WindowSpec",
    "window",
    "normalize_keys",
    "SortConfig",
    "SortOperator",
    "external_sort_table",
    "sort_table",
    "top_n",
    "DataChunk",
    "Table",
    "BIGINT",
    "BOOLEAN",
    "DATE",
    "DOUBLE",
    "FLOAT",
    "INTEGER",
    "SMALLINT",
    "VARCHAR",
    "NullOrder",
    "Order",
    "Schema",
    "SortKey",
    "SortSpec",
    "__version__",
]
