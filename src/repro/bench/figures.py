"""Experiment functions: one per table and figure of the paper.

Every function regenerates the rows/series of one exhibit from the paper's
evaluation, at a documented scale-down (micro-benchmarks run 2^6-2^12 rows
on the scaled simulator instead of 2^12-2^24 on a Xeon; end-to-end runs
use the paper's row counts divided by ``scale_down`` on a proportionally
scaled cache profile).  ``EXPERIMENTS.md`` records the measured outcomes
next to the paper's.

The micro-benchmark figures (2-10, Tables II/III) run on the instrumented
simulator of :mod:`repro.simsort`; the end-to-end figures (12-14) on the
system models of :mod:`repro.systems`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.report import FigureResult
from repro.sim.branch import GShareBranchPredictor, TwoBitPredictor
from repro.sim.cache import CacheHierarchy
from repro.sim.machine import Machine
from repro.simsort.harness import MicroResult, run_micro
from repro.systems import HardwareProfile, all_systems
from repro.systems.registry import SYSTEM_NAMES
from repro.table.table import Table
from repro.types.sortspec import SortSpec
from repro.workloads.distributions import (
    Distribution,
    correlated_distribution,
    generate_key_columns,
    random_distribution,
)
from repro.workloads.tpcds import (
    PAPER_CARDINALITIES,
    catalog_sales,
    customer,
    scaled_rows,
)

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_KEYS",
    "DEFAULT_DISTRIBUTIONS",
    "table1_hardware",
    "table2_counters_columnar",
    "table3_counters_row",
    "figure2_subsort_columnar",
    "figure3_subsort_columnar_stable",
    "figure4_row_vs_columnar",
    "figure5_row_vs_columnar_stable",
    "figure6_dynamic_comparator",
    "figure8_normalized_keys",
    "figure9_radix_vs_pdqsort",
    "figure10_counters_radix_pdq",
    "figure12_integers_floats",
    "figure13_catalog_sales",
    "figure14_customer",
    "table4_cardinalities",
    "rungen_comparison_budget",
    "robustness_predictors",
    "thread_scalability",
]

DEFAULT_SIZES = (1 << 6, 1 << 8, 1 << 10, 1 << 12)
"""Paper: 2^12..2^24.  Scaled with the simulator's smaller caches."""

DEFAULT_KEYS = (1, 2, 4)
"""Paper sweeps 1..4 key columns."""

DEFAULT_DISTRIBUTIONS = (
    random_distribution(),
    correlated_distribution(0.5),
    correlated_distribution(1.0),
)
"""Paper sweeps Random plus a CorrelatedP grid."""

_SCALE_NOTE = (
    "rows scaled to 2^6..2^12 (paper: 2^12..2^24) on a 4 KiB-L1 simulated "
    "machine (paper: 32 KiB L1 Xeon); see DESIGN.md"
)


def _cycles(
    values: np.ndarray,
    layout: str,
    approach: str,
    algorithm: str = "introsort",
    dynamic: bool = False,
) -> MicroResult:
    return run_micro(values, layout, approach, algorithm, dynamic)


# ---------------------------------------------------------------------- #
# Table I
# ---------------------------------------------------------------------- #


def table1_hardware() -> FigureResult:
    """Table I stand-in: the simulated hardware this reproduction runs on."""
    result = FigureResult(
        "table-i",
        "Specification of (simulated) hardware used in experiments",
        ["component", "micro-benchmarks", "end-to-end models"],
        notes="the paper lists m5d.metal / m5d.8xlarge EC2 instances here",
    )
    micro = Machine()
    profile = HardwareProfile()
    result.add(
        component="caches",
        **{
            "micro-benchmarks": str(micro.caches),
            "end-to-end models": (
                f"L1 {profile.l1_bytes // 1024} KiB, "
                f"L2 {profile.l2_bytes // 1024} KiB, "
                f"L3 {profile.l3_bytes // 1024 // 1024} MiB"
            ),
        },
    )
    result.add(
        component="branch predictor",
        **{
            "micro-benchmarks": type(micro.predictor).__name__,
            "end-to-end models": "mispredict-share model",
        },
    )
    result.add(
        component="threads",
        **{
            "micro-benchmarks": "1 (run generation focus)",
            "end-to-end models": str(profile.threads),
        },
    )
    result.add(
        component="cost model",
        **{
            "micro-benchmarks": str(vars(micro.cost_model)),
            "end-to-end models": f"clock {profile.frequency_hz / 1e9:.1f} GHz",
        },
    )
    return result


# ---------------------------------------------------------------------- #
# Tables II / III: perf counters, columnar vs row
# ---------------------------------------------------------------------- #


def _counter_table(
    experiment: str,
    title: str,
    layout: str,
    num_rows: int,
    algorithm: str,
) -> FigureResult:
    values = generate_key_columns(correlated_distribution(0.5), num_rows, 4)
    result = FigureResult(
        experiment,
        title,
        ["approach", "l1_misses", "branch_mispredictions", "comparisons"],
        notes=_SCALE_NOTE,
    )
    for approach in ("tuple", "subsort"):
        run = _cycles(values, layout, approach, algorithm)
        result.add(
            approach=approach,
            l1_misses=run.counters.l1_misses,
            branch_mispredictions=run.counters.branch_mispredictions,
            comparisons=run.counters.comparisons,
        )
    return result


def table2_counters_columnar(
    num_rows: int = 1 << 12, algorithm: str = "introsort"
) -> FigureResult:
    """Table II: counters for columnar tuple-at-a-time vs subsort."""
    return _counter_table(
        "table-ii",
        "L1 misses & branch mispredictions, columnar (C), Correlated0.5, "
        "4 keys, tuple-at-a-time (T) vs subsort (S)",
        "columnar",
        num_rows,
        algorithm,
    )


def table3_counters_row(
    num_rows: int = 1 << 12, algorithm: str = "introsort"
) -> FigureResult:
    """Table III: the same counters on the row (R) format."""
    return _counter_table(
        "table-iii",
        "L1 misses & branch mispredictions, row (R), Correlated0.5, "
        "4 keys, tuple-at-a-time (T) vs subsort (S)",
        "row",
        num_rows,
        algorithm,
    )


# ---------------------------------------------------------------------- #
# Figures 2/3: subsort vs tuple-at-a-time on columnar data
# ---------------------------------------------------------------------- #


def _relative_grid(
    experiment: str,
    title: str,
    algorithm: str,
    baseline: tuple[str, str, bool],
    contender: tuple[str, str, bool],
    sizes: Sequence[int],
    keys: Sequence[int],
    distributions: Sequence[Distribution],
) -> FigureResult:
    """Grid of relative runtime = cycles(baseline) / cycles(contender)."""
    result = FigureResult(
        experiment,
        title,
        ["distribution", "rows", "keys", "baseline_cycles",
         "contender_cycles", "relative"],
        notes=_SCALE_NOTE,
    )
    for distribution in distributions:
        for n in sizes:
            for k in keys:
                values = generate_key_columns(distribution, n, k)
                base = _cycles(values, baseline[0], baseline[1], algorithm,
                               baseline[2])
                cont = _cycles(values, contender[0], contender[1], algorithm,
                               contender[2])
                result.add(
                    distribution=distribution.name,
                    rows=n,
                    keys=k,
                    baseline_cycles=base.cycles,
                    contender_cycles=cont.cycles,
                    relative=base.cycles / cont.cycles,
                )
    return result


def figure2_subsort_columnar(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 2: subsort vs tuple-at-a-time, columnar, std::sort."""
    return _relative_grid(
        "figure-2",
        "Relative runtime (higher is better) of subsort vs tuple-at-a-time "
        "on columnar data, introsort (std::sort)",
        "introsort",
        ("columnar", "tuple", False),
        ("columnar", "subsort", False),
        sizes,
        keys,
        distributions,
    )


def figure3_subsort_columnar_stable(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 3: the same comparison under std::stable_sort (merge sort)."""
    return _relative_grid(
        "figure-3",
        "Relative runtime of subsort vs tuple-at-a-time on columnar data, "
        "merge sort (std::stable_sort)",
        "mergesort",
        ("columnar", "tuple", False),
        ("columnar", "subsort", False),
        sizes,
        keys,
        distributions,
    )


# ---------------------------------------------------------------------- #
# Figures 4/5: row vs columnar
# ---------------------------------------------------------------------- #


def _row_vs_columnar(
    experiment: str,
    title: str,
    algorithm: str,
    sizes: Sequence[int],
    keys: Sequence[int],
    distributions: Sequence[Distribution],
) -> FigureResult:
    result = FigureResult(
        experiment,
        title,
        ["distribution", "rows", "keys",
         "row_tuple_relative", "row_subsort_relative"],
        notes="baseline: columnar subsort; " + _SCALE_NOTE,
    )
    for distribution in distributions:
        for n in sizes:
            for k in keys:
                values = generate_key_columns(distribution, n, k)
                baseline = _cycles(values, "columnar", "subsort", algorithm)
                row_tuple = _cycles(values, "row", "tuple", algorithm)
                row_subsort = _cycles(values, "row", "subsort", algorithm)
                result.add(
                    distribution=distribution.name,
                    rows=n,
                    keys=k,
                    row_tuple_relative=baseline.cycles / row_tuple.cycles,
                    row_subsort_relative=baseline.cycles / row_subsort.cycles,
                )
    return result


def figure4_row_vs_columnar(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 4: row approaches vs columnar subsort, std::sort."""
    return _row_vs_columnar(
        "figure-4",
        "Relative runtime (higher is better) of row tuple-at-a-time and "
        "row subsort vs columnar subsort, introsort",
        "introsort",
        sizes,
        keys,
        distributions,
    )


def figure5_row_vs_columnar_stable(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 5: the same comparison under std::stable_sort."""
    return _row_vs_columnar(
        "figure-5",
        "Relative runtime of row approaches vs columnar subsort, merge sort",
        "mergesort",
        sizes,
        keys,
        distributions,
    )


# ---------------------------------------------------------------------- #
# Figures 6/8: comparator binding on rows
# ---------------------------------------------------------------------- #


def figure6_dynamic_comparator(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 6: dynamic vs static tuple-at-a-time comparator on rows."""
    return _relative_grid(
        "figure-6",
        "Relative runtime (higher is better) of a dynamic tuple-at-a-time "
        "comparator vs the static comparator, rows, introsort",
        "introsort",
        ("row", "tuple", False),  # static baseline (numerator)
        ("row", "tuple", True),  # dynamic contender (denominator)
        sizes,
        keys,
        distributions,
    )


def figure8_normalized_keys(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 8: normalized keys + memcmp vs the static comparator."""
    return _relative_grid(
        "figure-8",
        "Relative runtime (higher is better) of dynamic normalized-key "
        "memcmp vs the static tuple-at-a-time comparator, rows, introsort",
        "introsort",
        ("row", "tuple", False),
        ("normalized", "memcmp", False),
        sizes,
        keys,
        distributions,
    )


# ---------------------------------------------------------------------- #
# Figures 9/10: radix sort vs pdqsort on normalized keys
# ---------------------------------------------------------------------- #


def figure9_radix_vs_pdqsort(
    sizes: Sequence[int] = DEFAULT_SIZES,
    keys: Sequence[int] = DEFAULT_KEYS,
    distributions: Sequence[Distribution] = DEFAULT_DISTRIBUTIONS,
) -> FigureResult:
    """Figure 9: radix sort vs pdqsort (dynamic memcmp), normalized keys."""
    result = FigureResult(
        "figure-9",
        "Relative runtime (higher is better) of radix sort vs pdqsort with "
        "a dynamic memcmp comparator, normalized keys",
        ["distribution", "rows", "keys", "pdq_cycles", "radix_cycles",
         "relative"],
        notes=_SCALE_NOTE,
    )
    for distribution in distributions:
        for n in sizes:
            for k in keys:
                values = generate_key_columns(distribution, n, k)
                pdq = _cycles(values, "normalized", "memcmp", "pdqsort")
                radix = _cycles(values, "normalized", "radix")
                result.add(
                    distribution=distribution.name,
                    rows=n,
                    keys=k,
                    pdq_cycles=pdq.cycles,
                    radix_cycles=radix.cycles,
                    relative=pdq.cycles / radix.cycles,
                )
    return result


def figure10_counters_radix_pdq(num_rows: int = 1 << 12) -> FigureResult:
    """Figure 10: cumulative counters, radix vs pdqsort, Correlated0.5."""
    values = generate_key_columns(correlated_distribution(0.5), num_rows, 4)
    result = FigureResult(
        "figure-10",
        "Cumulative L1 misses and branch mispredictions of sorting "
        "4 key columns, Correlated0.5: pdqsort(memcmp) vs radix",
        ["algorithm", "l1_misses", "branch_mispredictions", "cycles"],
        notes=_SCALE_NOTE,
    )
    for label, approach, algorithm in (
        ("pdqsort+memcmp", "memcmp", "pdqsort"),
        ("radix", "radix", "introsort"),
    ):
        run = _cycles(values, "normalized", approach, algorithm)
        result.add(
            algorithm=label,
            l1_misses=run.counters.l1_misses,
            branch_mispredictions=run.counters.branch_mispredictions,
            cycles=run.cycles,
        )
    return result


# ---------------------------------------------------------------------- #
# Figures 12/13/14 + Table IV: end-to-end system comparison
# ---------------------------------------------------------------------- #

END_TO_END_SCALE = 100
"""End-to-end workloads run at the paper's row counts divided by this."""


def _system_grid(
    experiment: str,
    title: str,
    workloads: list[tuple[str, Table, SortSpec, tuple[str, ...]]],
    scale_down: int = END_TO_END_SCALE,
) -> FigureResult:
    profile = HardwareProfile().scaled(scale_down)
    columns = ["workload"] + [f"{name}_s" for name in SYSTEM_NAMES]
    result = FigureResult(
        experiment,
        title,
        columns,
        notes=(
            f"rows = paper counts / {scale_down}, cache profile scaled "
            f"to match; modelled seconds at {profile.frequency_hz/1e9:.1f} GHz"
        ),
    )
    systems = all_systems(profile)
    for label, table, spec, payload in workloads:
        row: dict = {"workload": label}
        for system in systems:
            run = system.benchmark_query(table, spec, payload)
            row[f"{system.name}_s"] = run.seconds
        result.add(**row)
    return result


def figure12_integers_floats(
    sizes: Sequence[int] | None = None,
    scale_down: int = END_TO_END_SCALE,
    seed: int = 0,
) -> FigureResult:
    """Figure 12: sorting 10-100M random integers and floats (scaled)."""
    if sizes is None:
        sizes = tuple(
            (10_000_000 * i) // scale_down for i in range(1, 11, 3)
        )
    rng = np.random.default_rng(seed)
    workloads = []
    for n in sizes:
        ints = rng.permutation(
            np.arange(n, dtype=np.int64) % 100_000_000
        ).astype(np.int32)
        workloads.append(
            (
                f"int32 n={n}",
                Table.from_numpy({"x": ints}),
                SortSpec.of("x"),
                ("x",),
            )
        )
    for n in sizes:
        floats = (rng.random(n) * 2e9 - 1e9).astype(np.float32)
        workloads.append(
            (
                f"float32 n={n}",
                Table.from_numpy({"x": floats}),
                SortSpec.of("x"),
                ("x",),
            )
        )
    return _system_grid(
        "figure-12",
        "Execution time (lower is better) of sorting random integers and "
        "floats (paper: 10-100M rows)",
        workloads,
        scale_down,
    )


CATALOG_SALES_KEYS = (
    "cs_warehouse_sk",
    "cs_ship_mode_sk",
    "cs_promo_sk",
    "cs_quantity",
)


def figure13_catalog_sales(
    scale_factors: Sequence[int] = (10, 100),
    scale_down: int = END_TO_END_SCALE,
) -> FigureResult:
    """Figure 13: TPC-DS catalog_sales sorted by 1-4 key columns."""
    workloads = []
    for sf in scale_factors:
        n = scaled_rows("catalog_sales", sf, scale_down)
        table = catalog_sales(n, sf)
        for k in range(1, 5):
            spec = SortSpec.of(*CATALOG_SALES_KEYS[:k])
            workloads.append(
                (f"SF{sf} {k} keys (n={n})", table, spec, ("cs_item_sk",))
            )
    return _system_grid(
        "figure-13",
        "Execution time of sorting TPC-DS catalog_sales by 1-4 key columns",
        workloads,
        scale_down,
    )


def figure14_customer(
    scale_factors: Sequence[int] = (100, 300),
    scale_down: int = END_TO_END_SCALE,
) -> FigureResult:
    """Figure 14: TPC-DS customer sorted by integer vs string keys."""
    workloads = []
    for sf in scale_factors:
        n = scaled_rows("customer", sf, scale_down)
        table = customer(n, sf)
        workloads.append(
            (
                f"SF{sf} integer (n={n})",
                table,
                SortSpec.of("c_birth_year", "c_birth_month", "c_birth_day"),
                ("c_customer_sk",),
            )
        )
        workloads.append(
            (
                f"SF{sf} string (n={n})",
                table,
                SortSpec.of("c_last_name", "c_first_name"),
                ("c_customer_sk",),
            )
        )
    return _system_grid(
        "figure-14",
        "Execution time of sorting TPC-DS customer by integer vs string keys",
        workloads,
        scale_down,
    )


def table4_cardinalities(scale_down: int = END_TO_END_SCALE) -> FigureResult:
    """Table IV: TPC-DS table cardinalities (paper and reproduction)."""
    result = FigureResult(
        "table-iv",
        "Cardinality of TPC-DS tables",
        ["table", "scale_factor", "paper_rows", "repro_rows"],
    )
    for (table, sf), rows in sorted(PAPER_CARDINALITIES.items()):
        result.add(
            table=table,
            scale_factor=sf,
            paper_rows=rows,
            repro_rows=scaled_rows(table, sf, scale_down),
        )
    return result


# ---------------------------------------------------------------------- #
# Section II analysis: run generation vs merge comparisons
# ---------------------------------------------------------------------- #


def rungen_comparison_budget(
    sizes: Sequence[int] = (1 << 14, 1 << 17, 1 << 20),
    thread_counts: Sequence[int] = (2, 16, 48),
) -> FigureResult:
    """Section II: share of comparisons spent in run generation."""
    from repro.sort.analysis import comparison_budget

    result = FigureResult(
        "section-ii",
        "comp_A (run generation) vs comp_B (merge): run generation "
        "dominates whenever k < sqrt(n)",
        ["rows", "runs", "comp_A", "comp_B", "rungen_share"],
        notes="paper's example: n=1e6, k=16 -> ~80% in run generation",
    )
    for n in sizes:
        for k in thread_counts:
            budget = comparison_budget(n, k)
            result.add(
                rows=n,
                runs=k,
                comp_A=budget.run_generation,
                comp_B=budget.merge,
                rungen_share=budget.run_generation_share,
            )
    return result


# ---------------------------------------------------------------------- #
# Robustness: do the branch-misprediction claims survive a smarter
# predictor?  (Not a paper exhibit; validates the simulator substitution.)
# ---------------------------------------------------------------------- #


def robustness_predictors(num_rows: int = 1 << 11) -> FigureResult:
    """Tables II/III branch counters under 2-bit vs gshare predictors.

    The paper measures a real Xeon; our simulator defaults to per-site
    2-bit counters.  This experiment re-runs the comparator study under
    gshare to confirm the qualitative ordering (tuple-at-a-time > subsort
    > radix mispredictions) is not an artifact of the predictor model.
    """
    values = generate_key_columns(correlated_distribution(0.5), num_rows, 4)
    result = FigureResult(
        "robustness-predictors",
        "Branch mispredictions by predictor model (Correlated0.5, 4 keys)",
        ["predictor", "columnar_tuple", "columnar_subsort", "radix"],
        notes="validates the simulator substitution, not a paper exhibit",
    )
    for label, factory in (
        ("two-bit", TwoBitPredictor),
        ("gshare", GShareBranchPredictor),
    ):
        misses = {}
        for key, layout, approach, algorithm in (
            ("columnar_tuple", "columnar", "tuple", "introsort"),
            ("columnar_subsort", "columnar", "subsort", "introsort"),
            ("radix", "normalized", "radix", "introsort"),
        ):
            machine = Machine(predictor=factory())
            run = run_micro(
                values, layout, approach, algorithm, machine=machine
            )
            misses[key] = run.counters.branch_mispredictions
        result.add(predictor=label, **misses)
    return result


def thread_scalability(
    num_rows: int = 500_000,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 48),
    scale_down: int = END_TO_END_SCALE,
) -> FigureResult:
    """Modelled speedup of DuckDB's pipeline with thread count.

    Not a numbered paper exhibit, but the claim behind Figure 11: run
    generation parallelizes trivially and Merge Path keeps the merge
    parallel, so the pipeline should scale close to linearly until the
    sequential fractions (final output conversion) bite.
    """
    import dataclasses

    from repro.systems.duckdb_model import DuckDBModel

    rng = np.random.default_rng(23)
    table = Table.from_numpy(
        {"x": rng.integers(0, 1 << 30, num_rows).astype(np.int32)}
    )
    spec = SortSpec.of("x")
    result = FigureResult(
        "thread-scalability",
        "DuckDB pipeline: modelled speedup vs thread count",
        ["threads", "seconds", "speedup", "efficiency"],
        notes="virtual-time model; run generation + Merge Path merging",
    )
    base_seconds = None
    for threads in thread_counts:
        profile = dataclasses.replace(
            HardwareProfile().scaled(scale_down), threads=threads
        )
        run = DuckDBModel(profile).benchmark_query(table, spec, ("x",))
        if base_seconds is None:
            base_seconds = run.seconds
        speedup = base_seconds / run.seconds
        result.add(
            threads=threads,
            seconds=run.seconds,
            speedup=speedup,
            efficiency=speedup / threads,
        )
    return result
