"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's exhibits: each ablation toggles one design
decision of the sort pipeline and measures its effect, either on the
instrumented simulator (cycles/counters) or on the real production
operator (wall-clock via pytest-benchmark in ``benchmarks/``).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.bench.report import FigureResult
from repro.engine.parallel import merge_tree_makespan
from repro.sim.machine import Machine
from repro.simsort.algorithms import lsd_radix_sort, msd_radix_sort
from repro.simsort.layouts import NormalizedKeyLayout
from repro.sort.operator import SortConfig, sort_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec
from repro.workloads.distributions import (
    correlated_distribution,
    generate_key_columns,
    random_distribution,
)
from repro.workloads.tpcds import customer

__all__ = [
    "ablation_string_prefix",
    "ablation_radix_switch",
    "ablation_merge_path",
    "ablation_radix_skip_copy",
    "ablation_block_size",
    "ablation_heuristic_chooser",
    "ablation_msd_pdq_fallback",
    "ablation_engine_paradigms",
    "ablation_sorting_side_benefits",
]


def ablation_string_prefix(
    num_rows: int = 20_000, prefixes: Sequence[int] = (2, 4, 8, 12)
) -> FigureResult:
    """Normalized-key string prefix length vs sort time and exactness.

    Short prefixes make keys cheap but force full-string tie-breaks;
    DuckDB caps the prefix at 12 bytes.  Measures the real operator.
    """
    table = customer(num_rows, 100)
    spec = SortSpec.of("c_last_name", "c_first_name")
    result = FigureResult(
        "ablation-prefix",
        "String prefix length in normalized keys vs real sort time",
        ["prefix_bytes", "seconds", "prefix_exact"],
    )
    reference = None
    for prefix in prefixes:
        config = SortConfig(string_prefix=prefix)
        start = time.perf_counter()
        output = sort_table(table, spec, config)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = output
        elif not output.equals(reference):
            raise AssertionError(
                f"prefix {prefix} changed the sort result"
            )
        result.add(
            prefix_bytes=prefix,
            seconds=elapsed,
            prefix_exact=prefix >= 12,
        )
    return result


def ablation_radix_switch(
    num_rows: int = 1 << 10, key_counts: Sequence[int] = (1, 2, 3, 4)
) -> FigureResult:
    """LSD vs MSD radix across key widths (DuckDB switches at 4 bytes)."""
    result = FigureResult(
        "ablation-radix-switch",
        "LSD vs MSD radix sort cycles by key width (simulated)",
        ["keys", "key_bytes", "lsd_cycles", "msd_cycles", "msd_over_lsd"],
    )
    for k in key_counts:
        values = generate_key_columns(random_distribution(), num_rows, k)
        cycles = {}
        for label, sorter in (("lsd", lsd_radix_sort), ("msd", msd_radix_sort)):
            machine = Machine()
            layout = NormalizedKeyLayout(machine, values)
            with machine.measure() as region:
                sorter(layout)
            cycles[label] = float(region.cycles)
        result.add(
            keys=k,
            key_bytes=4 * k,
            lsd_cycles=cycles["lsd"],
            msd_cycles=cycles["msd"],
            msd_over_lsd=cycles["lsd"] / cycles["msd"],
        )
    return result


def ablation_merge_path(
    run_count: int = 16,
    run_size: int = 1 << 16,
    thread_counts: Sequence[int] = (2, 8, 16, 48),
) -> FigureResult:
    """Merge Path vs naive cascaded merge: parallel makespan.

    Without Merge Path the final rounds of the cascade degrade to a single
    thread; with it every round stays fully parallel (paper, Figure 11).
    """
    result = FigureResult(
        "ablation-merge-path",
        "Cascaded merge makespan with and without Merge Path partitioning",
        ["threads", "naive_makespan", "merge_path_makespan", "speedup"],
        notes=f"{run_count} runs of {run_size} elements, unit cost/element",
    )
    runs = [run_size] * run_count
    for threads in thread_counts:
        naive = merge_tree_makespan(runs, threads, 1.0, merge_path=False)
        path = merge_tree_makespan(runs, threads, 1.0, merge_path=True)
        result.add(
            threads=threads,
            naive_makespan=naive,
            merge_path_makespan=path,
            speedup=naive / path,
        )
    return result


def ablation_radix_skip_copy(
    num_rows: int = 1 << 10, correlation: float = 1.0
) -> FigureResult:
    """The skip-copy optimization on data with constant key bytes.

    Correlated data has low-entropy bytes; skipping single-bucket passes
    avoids useless copies (one of Graefe's radix shortcomings the paper
    mitigates).
    """
    values = generate_key_columns(
        correlated_distribution(correlation), num_rows, 4
    )
    result = FigureResult(
        "ablation-skip-copy",
        "LSD radix with and without the skip-copy optimization (simulated)",
        ["variant", "cycles", "l1_misses", "swaps"],
    )
    for label, skip in (("skip-copy", True), ("always-copy", False)):
        machine = Machine()
        layout = NormalizedKeyLayout(machine, values)
        with machine.measure() as region:
            lsd_radix_sort(layout, skip_copy=skip)
        result.add(
            variant=label,
            cycles=float(region.cycles),
            l1_misses=region.counters.l1_misses,
            swaps=region.counters.swaps,
        )
    return result


def ablation_block_size(
    num_rows: int = 200_000,
    vector_sizes: Sequence[int] = (128, 1024, 8192, 65536),
) -> FigureResult:
    """Vector (block) size of the sort's ingest vs real wall-clock.

    The paper converts "one block of vectors at a time" to keep the
    conversion cache-resident; this measures the real operator's
    sensitivity to that granularity.
    """
    rng = np.random.default_rng(3)
    table = Table.from_numpy(
        {
            "a": rng.integers(0, 1 << 20, num_rows).astype(np.int32),
            "b": rng.standard_normal(num_rows).astype(np.float32),
        }
    )
    spec = SortSpec.of("a", "b DESC")
    result = FigureResult(
        "ablation-block-size",
        "Ingest vector size vs real sort wall-clock",
        ["vector_size", "seconds"],
    )
    reference = None
    for vector_size in vector_sizes:
        config = SortConfig(vector_size=vector_size)
        start = time.perf_counter()
        output = sort_table(table, spec, config)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = output
        elif not output.equals(reference):
            raise AssertionError("vector size changed the sort result")
        result.add(vector_size=vector_size, seconds=elapsed)
    return result


def ablation_heuristic_chooser(num_rows: int = 50_000) -> FigureResult:
    """DuckDB's fixed rule vs the cost-based chooser (future work, IX).

    Runs the real operator with each policy on two adversarial workloads:
    narrow low-cardinality keys (radix's home turf) and a wide multi-key
    sort of a small input (where pdqsort wins).
    """
    from repro.sort.operator import SortConfig, sort_table
    from repro.table.table import Table

    rng = np.random.default_rng(11)
    workloads = {
        "narrow-dups": (
            Table.from_numpy(
                {"a": rng.integers(0, 50, num_rows).astype(np.int32)}
            ),
            SortSpec.of("a"),
        ),
        "wide-unique": (
            Table.from_numpy(
                {
                    "a": rng.integers(-(2**60), 2**60, 2000).astype(np.int64),
                    "b": rng.integers(-(2**60), 2**60, 2000).astype(np.int64),
                    "c": rng.integers(-(2**60), 2**60, 2000).astype(np.int64),
                }
            ),
            SortSpec.of("a", "b", "c"),
        ),
    }
    result = FigureResult(
        "ablation-heuristic",
        "Fixed algorithm choice vs the cost-based heuristic (real seconds)",
        ["workload", "policy", "algorithm_used", "seconds"],
    )
    for name, (table, spec) in workloads.items():
        reference = None
        for policy in ("radix", "pdqsort", "heuristic"):
            from repro.sort.operator import SortOperator
            from repro.table.chunk import chunk_table

            config = SortConfig(force_algorithm=policy)
            operator = SortOperator(table.schema, spec, config)
            start = time.perf_counter()
            for chunk in chunk_table(table):
                operator.sink(chunk)
            output = operator.finalize()
            elapsed = time.perf_counter() - start
            if reference is None:
                reference = output
            elif not output.equals(reference):
                raise AssertionError(f"{policy} changed the sort result")
            result.add(
                workload=name,
                policy=policy,
                algorithm_used=operator.stats.algorithm,
                seconds=elapsed,
            )
    return result


def ablation_msd_pdq_fallback(
    num_rows: int = 30_000, key_bytes: int = 16
) -> FigureResult:
    """MSD radix with insertion-only vs pdqsort bucket fallback (IX)."""
    from repro.sort.radix import RadixStats, msd_radix_argsort

    rng = np.random.default_rng(13)
    matrix = rng.integers(0, 256, size=(num_rows, key_bytes)).astype(np.uint8)
    result = FigureResult(
        "ablation-msd-pdq",
        "MSD radix bucket fallback: insertion sort vs pdqsort (real seconds)",
        ["fallback", "seconds", "small_buckets"],
    )
    reference = None
    for label, threshold in (("insertion-only", None), ("pdq<=512", 512)):
        stats = RadixStats()
        start = time.perf_counter()
        order = msd_radix_argsort(matrix, stats, pdq_threshold=threshold)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = order
        elif not np.array_equal(order, reference):
            raise AssertionError("fallback changed the sort result")
        result.add(
            fallback=label,
            seconds=elapsed,
            small_buckets=stats.insertion_sorted_buckets,
        )
    return result


def ablation_engine_paradigms(num_rows: int = 8192) -> FigureResult:
    """Section V's framing: Volcano vs vectorized vs compiled overhead."""
    from repro.simsort.engines import PARADIGMS, run_pipeline

    rng = np.random.default_rng(17)
    values = rng.integers(0, 1000, num_rows).astype(np.uint32)
    result = FigureResult(
        "ablation-paradigms",
        "Interpretation overhead of execution paradigms (simulated cycles)",
        ["paradigm", "cycles", "relative", "interpretation_ops"],
    )
    runs = {p: run_pipeline(values, 500, p) for p in PARADIGMS}
    base = runs["compiled"].cycles
    for paradigm in PARADIGMS:
        run = runs[paradigm]
        result.add(
            paradigm=paradigm,
            cycles=run.cycles,
            relative=run.cycles / base,
            interpretation_ops=run.interpretation_ops,
        )
    return result


def ablation_sorting_side_benefits(num_rows: int = 50_000) -> FigureResult:
    """Section II's implicit benefits: RLE, zone maps, and order reuse.

    Besides the storage-side wins (compression, pruning), sorted data
    speeds up downstream *operators*: the last row measures a GROUP BY
    over a sorted table through the real planner path, where the
    order-propagation pass marks the aggregate presorted and skips its
    internal sort entirely.
    """
    from repro.analysis import sorting_benefit
    from repro.engine.database import Database
    from repro.table.column import ColumnVector
    from repro.types.datatypes import BIGINT
    from repro.types.schema import ColumnDef, Schema

    rng = np.random.default_rng(19)
    result = FigureResult(
        "ablation-side-benefits",
        "RLE compression, zone-map pruning, and operator order reuse",
        ["cardinality", "rle_unsorted", "rle_sorted",
         "zone_unsorted", "zone_sorted",
         "groupby_full_s", "groupby_presorted_s"],
    )
    for cardinality in (10, 1000, 100_000):
        column = ColumnVector.from_numpy(
            rng.integers(0, cardinality, num_rows).astype(np.int32)
        )
        low = cardinality // 2
        benefit = sorting_benefit(column, low, low + cardinality // 100 + 1,
                                  block_size=1024)
        result.add(
            cardinality=cardinality,
            rle_unsorted=benefit.rle_ratio_unsorted,
            rle_sorted=benefit.rle_ratio_sorted,
            zone_unsorted=benefit.zone_selectivity_unsorted,
            zone_sorted=benefit.zone_selectivity_sorted,
        )

    # Sorted-input GROUP BY through the real planner: the same query
    # over the same sorted table, with and without order propagation.
    keys = rng.integers(0, 1000, num_rows).astype(np.int64)
    values = rng.integers(0, 1 << 30, num_rows).astype(np.int64)
    table = Table(
        Schema((ColumnDef("k", BIGINT), ColumnDef("v", BIGINT))),
        [ColumnVector.from_numpy(keys), ColumnVector.from_numpy(values)],
    )
    db = Database()
    db.register("tv", sort_table(table, SortSpec.of("k")))
    db.declare_ordering("tv", "k")
    sql = "SELECT k, count(*), sum(v) FROM tv GROUP BY k"
    start = time.perf_counter()
    forced = db.execute(sql, propagate_order=False)
    full_s = time.perf_counter() - start
    start = time.perf_counter()
    presorted = db.execute(sql)
    presorted_s = time.perf_counter() - start
    if not presorted.equals(forced):
        raise AssertionError("presorted GROUP BY changed the result")
    result.add(
        cardinality="groupby(k)",
        groupby_full_s=full_s,
        groupby_presorted_s=presorted_s,
    )
    return result
