"""Result containers and text rendering for the experiment harness.

Each experiment function in :mod:`repro.bench.figures` returns a
:class:`FigureResult` whose ``render()`` prints the same rows/series the
paper's table or figure reports, so a benchmark run reads like the paper's
evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["FigureResult"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class FigureResult:
    """Rows reproducing one table or figure of the paper.

    Attributes:
        experiment: identifier, e.g. ``"figure-2"`` or ``"table-iii"``.
        title: what the paper's caption says this shows.
        columns: column order for rendering.
        rows: one dict per rendered row.
        notes: scale substitutions or caveats worth printing.
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column_values(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """A fixed-width text table with header and notes."""
        widths = {
            c: max(len(c), *(len(_format_value(r.get(c, ""))) for r in self.rows))
            if self.rows
            else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-" * len(header)
        lines = [f"== {self.experiment}: {self.title} ==", header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    _format_value(row.get(c, "")).ljust(widths[c])
                    for c in self.columns
                )
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)
