"""A small SQL subset parser: enough for the paper's benchmark queries.

The end-to-end benchmarks of Section VII drive every system with::

    SELECT count(*) FROM (
        SELECT <payload> FROM <table> ORDER BY <keys> OFFSET 1
    ) AS t

plus plain ``SELECT ... ORDER BY ...`` statements.  The grammar:

    query      := select
    select     := SELECT select_list FROM from_item
                  [GROUP BY column_list] [ORDER BY order_list]
                  [LIMIT n] [OFFSET n]
    select_list:= '*' | item (',' item)*
    item       := column
                | COUNT '(' ('*' | column) ')'
                | (SUM|MIN|MAX|AVG) '(' column ')'
    from_item  := base_item [[INNER] JOIN base_item ON join_cond]
    base_item  := identifier | '(' select ')' [AS? identifier]
    join_cond  := column '=' column (AND column '=' column)*
    order_list := order_key (',' order_key)*
    order_key  := column [ASC|DESC] [NULLS (FIRST|LAST)]

Produces the AST in :mod:`repro.engine.ast_nodes`.  Hand-written
tokenizer + recursive descent; errors carry the offending position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.engine.ast_nodes import (
    AggregateItem,
    CountStar,
    JoinRef,
    OrderItem,
    SelectStatement,
    StarSelection,
    SubqueryRef,
    TableRef,
)
from repro.types.sortspec import NullOrder, Order

__all__ = ["tokenize", "parse"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<symbol><=|>=|<>|<|>|=|\(|\)|,|\*|;)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT",
    "FROM",
    "ORDER",
    "GROUP",
    "BY",
    "ASC",
    "DESC",
    "NULLS",
    "FIRST",
    "LAST",
    "LIMIT",
    "OFFSET",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "AS",
    "WHERE",
    "AND",
    "JOIN",
    "INNER",
    "ON",
    "IS",
    "NOT",
    "NULL",
    "TRUE",
    "FALSE",
}

_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG")


@dataclass(frozen=True)
class Token:
    kind: str  # "ident", "keyword", "number", "symbol", "eof"
    text: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Split a query string into tokens; raises ParseError on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(
                f"unexpected character {sql[position]!r} at position {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "ident":
            upper = text.upper()
            kind = "keyword" if upper in _KEYWORDS else "ident"
            tokens.append(Token(kind, upper if kind == "keyword" else text,
                                match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token("number", text, match.start()))
        elif match.lastgroup == "string":
            literal = text[1:-1].replace("''", "'")
            tokens.append(Token("string", literal, match.start()))
        else:
            tokens.append(Token("symbol", text, match.start()))
    tokens.append(Token("eof", "", len(sql)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers --------------------------------------------------- #

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.current
        if token.kind != "keyword" or token.text != word:
            raise ParseError(
                f"expected {word} at position {token.position}, "
                f"got {token.text or 'end of input'!r}"
            )
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.current
        if token.kind != "symbol" or token.text != symbol:
            raise ParseError(
                f"expected {symbol!r} at position {token.position}, "
                f"got {token.text or 'end of input'!r}"
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        token = self.current
        if token.kind == "keyword" and token.text == word:
            self.advance()
            return True
        return False

    def accept_symbol(self, symbol: str) -> bool:
        token = self.current
        if token.kind == "symbol" and token.text == symbol:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.current
        if token.kind != "ident":
            raise ParseError(
                f"expected identifier at position {token.position}, "
                f"got {token.text or 'end of input'!r}"
            )
        return self.advance().text

    def expect_number(self) -> int:
        token = self.current
        if token.kind != "number":
            raise ParseError(
                f"expected number at position {token.position}, "
                f"got {token.text or 'end of input'!r}"
            )
        return int(self.advance().text)

    # -- grammar --------------------------------------------------------- #

    def parse_query(self) -> SelectStatement:
        statement = self.parse_select()
        self.accept_symbol(";")
        token = self.current
        if token.kind != "eof":
            raise ParseError(
                f"unexpected trailing input at position {token.position}: "
                f"{token.text!r}"
            )
        return statement

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        selection = self.parse_select_list()
        self.expect_keyword("FROM")
        source = self.parse_from_item()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        group_by: tuple[str, ...] = ()
        order_by: tuple[OrderItem, ...] = ()
        limit = offset = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            columns = [self.expect_ident()]
            while self.accept_symbol(","):
                columns.append(self.expect_ident())
            group_by = tuple(columns)
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self.parse_order_list()
        if self.accept_keyword("LIMIT"):
            limit = self.expect_number()
        if self.accept_keyword("OFFSET"):
            offset = self.expect_number()
        return SelectStatement(
            selection, source, order_by, limit, offset, group_by, where
        )

    def parse_select_list(self):
        if self.accept_symbol("*"):
            return StarSelection()
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        if len(items) == 1 and isinstance(items[0], AggregateItem):
            item = items[0]
            if item.function == "count" and item.column is None:
                return CountStar()
        return tuple(items)

    def parse_condition(self):
        from repro.engine.expressions import Comparison, Conjunction

        comparisons = [self.parse_comparison()]
        while self.accept_keyword("AND"):
            comparisons.append(self.parse_comparison())
        return Conjunction(tuple(comparisons))

    def parse_comparison(self):
        from repro.engine.expressions import Comparison

        column = self.expect_ident()
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return Comparison(column, "is not null" if negated else "is null")
        token = self.current
        if token.kind != "symbol" or token.text not in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            raise ParseError(
                f"expected a comparison operator at position "
                f"{token.position}, got {token.text!r}"
            )
        op = self.advance().text
        return Comparison(column, op, self.parse_literal())

    def parse_literal(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            self.advance()
            return token.text
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            self.advance()
            return token.text == "TRUE"
        raise ParseError(
            f"expected a literal at position {token.position}, "
            f"got {token.text or 'end of input'!r}"
        )

    def parse_select_item(self):
        token = self.current
        if token.kind == "keyword" and token.text in _AGGREGATE_KEYWORDS:
            function = self.advance().text.lower()
            self.expect_symbol("(")
            if self.accept_symbol("*"):
                if function != "count":
                    raise ParseError(
                        f"{function}(*) is not valid at position "
                        f"{token.position}"
                    )
                column = None
            else:
                column = self.expect_ident()
            self.expect_symbol(")")
            return AggregateItem(function, column)
        return self.expect_ident()

    def parse_from_item(self):
        item = self.parse_base_from_item()
        if self.accept_keyword("INNER"):
            self.expect_keyword("JOIN")
            return self.parse_join_tail(item)
        if self.accept_keyword("JOIN"):
            return self.parse_join_tail(item)
        return item

    def parse_join_tail(self, left):
        right = self.parse_base_from_item()
        self.expect_keyword("ON")
        pairs = [self.parse_join_equality()]
        while self.accept_keyword("AND"):
            pairs.append(self.parse_join_equality())
        return JoinRef(left, right, tuple(pairs))

    def parse_join_equality(self) -> tuple[str, str]:
        first = self.expect_ident()
        self.expect_symbol("=")
        return first, self.expect_ident()

    def parse_base_from_item(self):
        if self.accept_symbol("("):
            subquery = self.parse_select()
            self.expect_symbol(")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_ident()
            elif self.current.kind == "ident":
                alias = self.advance().text
            return SubqueryRef(subquery, alias)
        return TableRef(self.expect_ident())

    def parse_order_list(self) -> tuple[OrderItem, ...]:
        items = [self.parse_order_item()]
        while self.accept_symbol(","):
            items.append(self.parse_order_item())
        return tuple(items)

    def parse_order_item(self) -> OrderItem:
        column = self.expect_ident()
        order = Order.ASCENDING
        null_order = None
        if self.accept_keyword("ASC"):
            order = Order.ASCENDING
        elif self.accept_keyword("DESC"):
            order = Order.DESCENDING
        if self.accept_keyword("NULLS"):
            if self.accept_keyword("FIRST"):
                null_order = NullOrder.NULLS_FIRST
            elif self.accept_keyword("LAST"):
                null_order = NullOrder.NULLS_LAST
            else:
                token = self.current
                raise ParseError(
                    f"expected FIRST or LAST at position {token.position}"
                )
        return OrderItem(column, order, null_order)


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement into the AST."""
    return _Parser(tokenize(sql)).parse_query()
