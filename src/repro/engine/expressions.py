"""WHERE-clause predicates: comparisons against literals, AND-combined.

The mini engine's filter expressions::

    WHERE a < 10 AND name = 'GERMANY' AND b IS NOT NULL

Grammar (AND-conjunctions of simple comparisons; enough for a usable
engine without turning this into an expression-compiler project)::

    condition  := comparison (AND comparison)*
    comparison := column op literal | column IS [NOT] NULL
    op         := = | <> | < | <= | > | >=
    literal    := number | 'string' | TRUE | FALSE

Evaluation is vectorized per DataChunk: each comparison produces a boolean
mask over the vector (NULL comparisons are false, SQL three-valued logic
collapsed to filter semantics), masks are AND-ed, and the chunk is
filtered with one gather.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import BindError, EngineError
from repro.table.chunk import DataChunk
from repro.types.datatypes import TypeId
from repro.types.schema import Schema

__all__ = ["Comparison", "Conjunction", "evaluate_mask", "filter_chunk"]

_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """``column op literal`` or an IS [NOT] NULL test (op = "is null" /
    "is not null", literal ignored)."""

    column: str
    op: str
    literal: Any = None

    def __post_init__(self) -> None:
        if self.op not in _OPS + ("is null", "is not null"):
            raise EngineError(f"unsupported operator {self.op!r}")

    def validate(self, schema: Schema) -> None:
        if self.column not in schema:
            raise BindError(
                f"WHERE column {self.column!r} not found in "
                f"{list(schema.names)}"
            )
        column = schema.column(self.column)
        if self.op in ("is null", "is not null"):
            return
        dtype = column.dtype
        if dtype.type_id is TypeId.VARCHAR:
            if not isinstance(self.literal, str):
                raise BindError(
                    f"column {self.column!r} is VARCHAR but literal is "
                    f"{type(self.literal).__name__}"
                )
        elif isinstance(self.literal, str):
            raise BindError(
                f"column {self.column!r} is {dtype.name} but literal is a "
                "string"
            )


@dataclass(frozen=True)
class Conjunction:
    """AND of one or more comparisons."""

    comparisons: tuple[Comparison, ...]

    def __post_init__(self) -> None:
        if not self.comparisons:
            raise EngineError("a conjunction needs at least one comparison")

    def validate(self, schema: Schema) -> None:
        for comparison in self.comparisons:
            comparison.validate(schema)


def _comparison_mask(chunk: DataChunk, comparison: Comparison) -> np.ndarray:
    vector = chunk.vector(comparison.column)
    if comparison.op == "is null":
        return ~vector.validity
    if comparison.op == "is not null":
        return vector.validity.copy()
    data = vector.data
    literal = comparison.literal
    if vector.dtype.type_id is TypeId.VARCHAR:
        raw = _object_compare(data, comparison.op, literal)
    else:
        raw = _numeric_compare(data, comparison.op, literal)
    return raw & vector.validity  # NULL never satisfies a comparison


def _numeric_compare(data: np.ndarray, op: str, literal: Any) -> np.ndarray:
    if op == "=":
        return data == literal
    if op == "<>":
        return data != literal
    if op == "<":
        return data < literal
    if op == "<=":
        return data <= literal
    if op == ">":
        return data > literal
    return data >= literal


def _object_compare(values: np.ndarray, op: str, literal: str) -> np.ndarray:
    """String comparison against a literal, vectorized.

    The (usually object-dtype) column is coerced once to a fixed-width
    unicode array -- applying ``str`` element-wise in C -- and compared
    with one whole-array numpy operator; numpy unicode comparison is the
    same codepoint-lexicographic order as Python ``str``.
    """
    arr = np.asarray(values)
    if arr.dtype.kind != "U":
        arr = arr.astype(np.str_)
    if op == "=":
        return np.asarray(arr == literal, dtype=bool)
    if op == "<>":
        return np.asarray(arr != literal, dtype=bool)
    if op == "<":
        return np.asarray(arr < literal, dtype=bool)
    if op == "<=":
        return np.asarray(arr <= literal, dtype=bool)
    if op == ">":
        return np.asarray(arr > literal, dtype=bool)
    return np.asarray(arr >= literal, dtype=bool)


def evaluate_mask(chunk: DataChunk, condition: Conjunction) -> np.ndarray:
    """Boolean keep-mask of a conjunction over one chunk."""
    mask = _comparison_mask(chunk, condition.comparisons[0])
    for comparison in condition.comparisons[1:]:
        mask &= _comparison_mask(chunk, comparison)
    return mask


def filter_chunk(chunk: DataChunk, condition: Conjunction) -> DataChunk:
    """The chunk restricted to rows satisfying the condition."""
    mask = evaluate_mask(chunk, condition)
    if mask.all():
        return chunk
    indices = np.flatnonzero(mask)
    vectors = [v.take(indices) for v in chunk.vectors]
    return DataChunk(chunk.schema, vectors)
