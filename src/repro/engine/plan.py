"""Logical plans, binding, and the optimizer rules that matter here.

The paper's benchmarking methodology (Section VII-A) hinges on optimizer
behaviour: a full sort is dropped when its order cannot affect the result
(aggregate over a sorted subquery), and ``ORDER BY ... LIMIT`` becomes a
specialized top-N operator.  We implement exactly those rules so the
paper's counter-measure -- adding ``OFFSET 1`` -- is observable in this
engine too.

On top of those, the planner propagates **order properties** bottom-up
(Do & Graefe's "interesting orderings" reuse, arXiv 2209.08420): every
node derives the :class:`~repro.types.sortspec.SortSpec` its output is
known to be sorted by (:func:`provided_ordering`) -- scans of tables
with a declared ordering (incremental sorted views), sorts, group-bys
and merge joins establish order; filters, projections and limits
preserve it.  :func:`optimize` then rewrites each ``LogicalSort`` whose
requirement is already provided:

* **elided** -- the provided ordering equals the spec; the sort becomes
  a pass-through.
* **subsumed** -- the spec is a proper prefix of the provided ordering
  (``ORDER BY a, b`` over input sorted ``a, b, c``); also pass-through.
* **refine** -- a proper prefix of the spec is provided; the sort
  downgrades to the vectorized tie-group refinement pass
  (:func:`repro.sort.refine.refine_sorted`) that only orders rows
  *within* already-sorted prefix groups.

The same derivation marks ``LogicalGroupBy`` inputs as presorted (the
aggregate skips its internal sort) and elides either input sort of a
``LogicalJoin`` (sort-merge join over pre-sorted inputs).

Plan shape::

    Scan[/Join] -> [Filter] -> [GroupBy] -> [Sort] -> [Limit]
        -> [Project | Aggregate]

built from the AST by :func:`bind`, rewritten by :func:`optimize`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.aggregate.groupby import Aggregate
from repro.errors import BindError
from repro.engine.ast_nodes import (
    AggregateItem,
    CountStar,
    JoinRef,
    SelectStatement,
    StarSelection,
    SubqueryRef,
    TableRef,
)
from repro.types.datatypes import BIGINT, DOUBLE
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import (
    SortKey,
    SortSpec,
    common_order_prefix,
    ordering_satisfies,
)

__all__ = [
    "LogicalPlan",
    "LogicalScan",
    "LogicalProject",
    "LogicalFilter",
    "LogicalSort",
    "LogicalLimit",
    "LogicalAggregate",
    "LogicalGroupBy",
    "LogicalJoin",
    "LogicalTopN",
    "bind",
    "optimize",
    "provided_ordering",
    "explain",
]

OrderingLookup = Callable[[str], "SortSpec | None"]
"""Resolves a base table name to its declared ordering, or ``None``."""


@dataclass(frozen=True)
class LogicalPlan:
    """Base class: every node knows its output schema."""

    schema: Schema


@dataclass(frozen=True)
class LogicalScan(LogicalPlan):
    table_name: str


@dataclass(frozen=True)
class LogicalProject(LogicalPlan):
    child: LogicalPlan
    columns: tuple[str, ...]


@dataclass(frozen=True)
class LogicalFilter(LogicalPlan):
    """WHERE: an AND-conjunction of simple comparisons (streaming)."""

    child: LogicalPlan
    condition: object  # engine.expressions.Conjunction


@dataclass(frozen=True)
class LogicalSort(LogicalPlan):
    """ORDER BY.  ``mode`` records what the optimizer decided:

    * ``"full"`` -- run the sort operator (the default).
    * ``"elided"`` / ``"subsumed"`` -- the input's provided ordering
      already satisfies (equals / extends beyond) the spec; execution
      streams chunks through untouched.
    * ``"refine"`` -- the input provides ``refine_prefix`` (a proper
      leading prefix of the spec); execution only orders rows within
      the existing prefix groups.

    ``reason`` names the order source for ``explain`` output.
    """

    child: LogicalPlan
    spec: SortSpec
    mode: str = "full"
    reason: str = ""
    refine_prefix: SortSpec | None = None


@dataclass(frozen=True)
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: int | None
    offset: int


@dataclass(frozen=True)
class LogicalAggregate(LogicalPlan):
    """Global count(*) -- the benchmark queries' bracketing aggregate."""

    child: LogicalPlan


@dataclass(frozen=True)
class LogicalGroupBy(LogicalPlan):
    """Sort-based GROUP BY with aggregate expressions.

    ``presorted`` is set by the optimizer when the input's provided
    ordering covers the grouping keys (ascending, NULLS LAST); the
    physical operator then skips its internal sort and detects group
    boundaries directly.
    """

    child: LogicalPlan
    keys: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]
    presorted: bool = False


@dataclass(frozen=True)
class LogicalJoin(LogicalPlan):
    """Inner sort-merge equi-join of two children.

    Output columns are all left columns then all right columns, with
    colliding names prefixed ``l_`` / ``r_`` (mirroring
    :func:`repro.join.merge_join.merge_join`).  ``left_presorted`` /
    ``right_presorted`` are set by the optimizer when that side's
    provided ordering already covers its join keys, eliding the
    operator's input sort.
    """

    left: LogicalPlan
    right: LogicalPlan
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]
    left_presorted: bool = False
    right_presorted: bool = False


@dataclass(frozen=True)
class LogicalTopN(LogicalPlan):
    """Fused Sort + Limit produced by the optimizer."""

    child: LogicalPlan
    spec: SortSpec
    limit: int
    offset: int


# ---------------------------------------------------------------------- #
# Binding
# ---------------------------------------------------------------------- #

CatalogLookup = Callable[[str], Schema]


def bind(statement: SelectStatement, catalog: CatalogLookup) -> LogicalPlan:
    """Resolve names and produce the canonical logical plan."""
    plan = _bind_from_item(statement.source, catalog)

    if statement.where is not None:
        statement.where.validate(plan.schema)
        plan = LogicalFilter(plan.schema, plan, statement.where)

    selection = statement.selection
    has_aggregate_items = isinstance(selection, tuple) and any(
        isinstance(item, AggregateItem) for item in selection
    )
    if statement.group_by or has_aggregate_items and not isinstance(
        selection, CountStar
    ):
        plan = _bind_group_by(statement, plan)
        selection = tuple(
            _select_item_name(item)
            for item in (
                statement.selection
                if isinstance(statement.selection, tuple)
                else (AggregateItem("count", None),)
            )
        )
    elif isinstance(selection, CountStar) and statement.group_by:
        plan = _bind_group_by(statement, plan)
        selection = ("count_star",)
    elif isinstance(selection, tuple):
        for name in selection:
            if name not in plan.schema:
                raise BindError(
                    f"column {name!r} not found in {list(plan.schema.names)}"
                )

    # ORDER BY binds against the columns below the projection (the
    # source, or the GROUP BY output), like real engines.
    if statement.has_order:
        spec = statement.sort_spec()
        for key in spec.keys:
            if key.column not in plan.schema:
                raise BindError(
                    f"ORDER BY column {key.column!r} not found in "
                    f"{list(plan.schema.names)}"
                )
        plan = LogicalSort(plan.schema, plan, spec)

    if statement.limit is not None or statement.offset is not None:
        plan = LogicalLimit(
            plan.schema, plan, statement.limit, statement.offset or 0
        )

    if isinstance(selection, tuple):
        projected = plan.schema.select(selection)
        plan = LogicalProject(projected, plan, tuple(selection))
    elif isinstance(selection, CountStar):
        count_schema = Schema((ColumnDef("count_star", BIGINT, False),))
        plan = LogicalAggregate(count_schema, plan)
    elif not isinstance(selection, StarSelection):  # pragma: no cover
        raise BindError(f"unsupported selection {selection!r}")
    return plan


def _bind_from_item(source, catalog: CatalogLookup) -> LogicalPlan:
    if isinstance(source, TableRef):
        return LogicalScan(catalog(source.name), source.name)
    if isinstance(source, SubqueryRef):
        return bind(source.query, catalog)
    if isinstance(source, JoinRef):
        return _bind_join(source, catalog)
    raise BindError(f"unsupported FROM item {source!r}")


def join_output_schema(left: Schema, right: Schema) -> Schema:
    """The merge join's output schema: left then right columns, with
    colliding names prefixed ``l_`` / ``r_`` (exactly the naming of
    :func:`repro.join.merge_join.merge_join`)."""
    defs = []
    for column in left.columns:
        name = f"l_{column.name}" if column.name in right else column.name
        defs.append(ColumnDef(name, column.dtype, column.nullable))
    for column in right.columns:
        name = f"r_{column.name}" if column.name in left else column.name
        defs.append(ColumnDef(name, column.dtype, column.nullable))
    return Schema(tuple(defs))


def _bind_join(source: JoinRef, catalog: CatalogLookup) -> LogicalPlan:
    """Resolve a ``FROM x JOIN y ON a = b [AND ...]`` item.

    Each ON equality's bare column names are resolved by side: the name
    found in the left schema pairs with the name found in the right
    (either order per equality).  A name present in both schemas binds
    left-first.
    """
    left = _bind_from_item(source.left, catalog)
    right = _bind_from_item(source.right, catalog)
    left_keys: list[str] = []
    right_keys: list[str] = []
    for a, b in source.on:
        if a in left.schema and b in right.schema:
            lk, rk = a, b
        elif b in left.schema and a in right.schema:
            lk, rk = b, a
        else:
            raise BindError(
                f"cannot resolve join condition {a} = {b}: need one "
                f"column from each side (left has "
                f"{list(left.schema.names)}, right has "
                f"{list(right.schema.names)})"
            )
        lt = left.schema.column(lk).dtype
        rt = right.schema.column(rk).dtype
        if lt.type_id is not rt.type_id:
            raise BindError(
                f"cannot join {lk} ({lt.name}) with {rk} ({rt.name})"
            )
        left_keys.append(lk)
        right_keys.append(rk)
    return LogicalJoin(
        join_output_schema(left.schema, right.schema),
        left,
        right,
        tuple(left_keys),
        tuple(right_keys),
    )


def _select_item_name(item) -> str:
    if isinstance(item, AggregateItem):
        return Aggregate(item.function, item.column).output_name
    return item


def _aggregate_output_type(aggregate: Aggregate, child: LogicalPlan):
    if aggregate.name == "count":
        return BIGINT
    if aggregate.name in ("sum", "avg"):
        return DOUBLE
    # min/max of strings keeps the type; numerics widen to DOUBLE.
    dtype = child.schema.column(aggregate.column).dtype
    return dtype if dtype.is_variable_width else DOUBLE


def _bind_group_by(
    statement: SelectStatement, child: LogicalPlan
) -> LogicalPlan:
    """Validate and plan a GROUP BY + aggregates block."""
    selection = statement.selection
    items = (
        selection
        if isinstance(selection, tuple)
        else (AggregateItem("count", None),)
    )
    keys = statement.group_by
    if not keys:
        raise BindError(
            "aggregates other than a lone count(*) require GROUP BY"
        )
    for key in keys:
        if key not in child.schema:
            raise BindError(
                f"GROUP BY column {key!r} not found in "
                f"{list(child.schema.names)}"
            )
    aggregates: list[Aggregate] = []
    for item in items:
        if isinstance(item, AggregateItem):
            if item.column is not None and item.column not in child.schema:
                raise BindError(
                    f"aggregate column {item.column!r} not found in "
                    f"{list(child.schema.names)}"
                )
            aggregates.append(Aggregate(item.function, item.column))
        elif item not in keys:
            raise BindError(
                f"column {item!r} must appear in GROUP BY or inside an "
                "aggregate"
            )
    if not aggregates:
        # Pure grouping (SELECT k FROM t GROUP BY k): count(*) is
        # computed and projected away, giving DISTINCT semantics.
        aggregates.append(Aggregate("count", None))
    defs = [ColumnDef(k, child.schema.column(k).dtype) for k in keys]
    for aggregate in aggregates:
        nullable = aggregate.name != "count"
        defs.append(
            ColumnDef(
                aggregate.output_name,
                _aggregate_output_type(aggregate, child),
                nullable,
            )
        )
    return LogicalGroupBy(
        Schema(tuple(defs)), child, tuple(keys), tuple(aggregates)
    )


# ---------------------------------------------------------------------- #
# Optimizer
# ---------------------------------------------------------------------- #


def provided_ordering(
    plan: LogicalPlan, table_ordering: OrderingLookup | None = None
) -> SortSpec | None:
    """The ordering a node's output is known to carry, or ``None``.

    Derivation rules (bottom-up):

    * ``Scan`` -- the table's declared ordering (``table_ordering``),
      e.g. a published incremental sorted view.
    * ``Filter`` / ``Limit`` -- preserve the child's ordering.
    * ``Project`` -- preserves the longest leading prefix whose columns
      survive the projection.
    * ``Sort`` / ``TopN`` -- establish their spec; a pass-through
      (elided/subsumed) sort re-provides the child's stronger ordering.
    * ``GroupBy`` -- output rows are in key order (ascending, NULLS
      LAST): the sort-based aggregate emits groups sorted by its keys.
    * ``Join`` -- the merge join emits key groups in left-key order, so
      the output is sorted by the left join keys (ascending, NULLS
      LAST) under their output names.
    """
    lookup = table_ordering or (lambda name: None)
    if isinstance(plan, LogicalScan):
        return lookup(plan.table_name)
    if isinstance(plan, (LogicalFilter, LogicalLimit)):
        return provided_ordering(plan.child, lookup)
    if isinstance(plan, LogicalProject):
        child = provided_ordering(plan.child, lookup)
        if child is None:
            return None
        kept = []
        for key in child.keys:
            if key.column not in plan.columns:
                break
            kept.append(key)
        return SortSpec(tuple(kept)) if kept else None
    if isinstance(plan, LogicalSort):
        if plan.mode in ("elided", "subsumed"):
            return provided_ordering(plan.child, lookup)
        return plan.spec
    if isinstance(plan, LogicalTopN):
        return plan.spec
    if isinstance(plan, LogicalGroupBy):
        return SortSpec(tuple(SortKey(k) for k in plan.keys))
    if isinstance(plan, LogicalJoin):
        keys = []
        for name in plan.left_keys:
            output = f"l_{name}" if name in plan.right.schema else name
            keys.append(SortKey(output))
        return SortSpec(tuple(keys))
    return None


def _order_source(plan: LogicalPlan) -> str:
    """A short label for where a provided ordering came from."""
    if isinstance(plan, (LogicalFilter, LogicalLimit)):
        return _order_source(plan.child)
    if isinstance(plan, LogicalProject):
        return _order_source(plan.child)
    if isinstance(plan, LogicalScan):
        return f"Scan({plan.table_name})"
    if isinstance(plan, LogicalSort):
        if plan.mode in ("elided", "subsumed"):
            return _order_source(plan.child)
        return "Sort"
    if isinstance(plan, LogicalTopN):
        return "TopN"
    if isinstance(plan, LogicalGroupBy):
        return "GroupBy"
    if isinstance(plan, LogicalJoin):
        return "MergeJoin"
    return "input"


def optimize(
    plan: LogicalPlan,
    table_ordering: OrderingLookup | None = None,
    propagate_order: bool = True,
) -> LogicalPlan:
    """Apply sort-elision, order-propagation, and top-N rewrites.

    ``table_ordering`` resolves base-table names to declared orderings
    (:meth:`repro.engine.database.Database.table_ordering`); without it
    only orderings established *inside* the plan (sorts, group-bys,
    joins) propagate.  ``propagate_order=False`` disables the whole
    order-propagation pass (every sort runs in full) while keeping the
    classic rewrites -- the oracle configuration differential tests
    compare against.
    """
    lookup = table_ordering or (lambda name: None)
    return _optimize(plan, lookup, propagate_order)


def _optimize(
    plan: LogicalPlan, lookup: OrderingLookup, propagate: bool = True
) -> LogicalPlan:
    plan = _rewrite_children(plan, lookup, propagate)
    if isinstance(plan, LogicalAggregate):
        plan = replace(plan, child=_drop_irrelevant_sort(plan.child))
    if propagate and isinstance(plan, LogicalSort):
        plan = _apply_order_property(plan, lookup)
    if propagate and isinstance(plan, LogicalGroupBy) and not plan.presorted:
        needed = SortSpec(tuple(SortKey(k) for k in plan.keys))
        if ordering_satisfies(provided_ordering(plan.child, lookup), needed):
            plan = replace(plan, presorted=True)
    if propagate and isinstance(plan, LogicalJoin):
        plan = _elide_join_input_sorts(plan, lookup)
    if isinstance(plan, LogicalLimit) and isinstance(plan.child, LogicalSort):
        # ORDER BY ... LIMIT n [OFFSET m] -> top-N (paper, Section VII-A)
        # -- but only for a sort that would actually run: a pass-through
        # or refine-mode sort under a streaming Limit is already cheaper
        # than a heap over the whole input.
        if plan.limit is not None and plan.child.mode == "full":
            sort = plan.child
            return LogicalTopN(
                plan.schema, sort.child, sort.spec, plan.limit, plan.offset
            )
    return plan


def _apply_order_property(
    sort: LogicalSort, lookup: OrderingLookup
) -> LogicalSort:
    """Downgrade a sort whose requirement is (partly) provided."""
    provided = provided_ordering(sort.child, lookup)
    if provided is None:
        return sort
    shared = common_order_prefix(provided, sort.spec)
    if shared >= len(sort.spec.keys):
        mode = (
            "elided" if len(provided.keys) == len(sort.spec.keys)
            else "subsumed"
        )
        return replace(
            sort,
            mode=mode,
            reason=f"provided by {_order_source(sort.child)}",
            refine_prefix=None,
        )
    if shared > 0:
        return replace(
            sort,
            mode="refine",
            reason=f"prefix provided by {_order_source(sort.child)}",
            refine_prefix=SortSpec(sort.spec.keys[:shared]),
        )
    return sort


def _elide_join_input_sorts(
    join: LogicalJoin, lookup: OrderingLookup
) -> LogicalJoin:
    """Mark join inputs whose provided ordering covers their keys."""
    left_need = SortSpec(tuple(SortKey(k) for k in join.left_keys))
    right_need = SortSpec(tuple(SortKey(k) for k in join.right_keys))
    if not join.left_presorted and ordering_satisfies(
        provided_ordering(join.left, lookup), left_need
    ):
        join = replace(join, left_presorted=True)
    if not join.right_presorted and ordering_satisfies(
        provided_ordering(join.right, lookup), right_need
    ):
        join = replace(join, right_presorted=True)
    return join


def _rewrite_children(
    plan: LogicalPlan, lookup: OrderingLookup, propagate: bool
) -> LogicalPlan:
    if isinstance(plan, LogicalJoin):
        return replace(
            plan,
            left=_optimize(plan.left, lookup, propagate),
            right=_optimize(plan.right, lookup, propagate),
        )
    if isinstance(
        plan,
        (
            LogicalProject,
            LogicalFilter,
            LogicalSort,
            LogicalLimit,
            LogicalAggregate,
            LogicalGroupBy,
        ),
    ):
        return replace(plan, child=_optimize(plan.child, lookup, propagate))
    return plan


def _drop_irrelevant_sort(plan: LogicalPlan) -> LogicalPlan:
    """Remove a Sort whose order cannot affect a count(*) above it.

    Descends through projections.  Stops at Limit/Offset: with OFFSET 1
    *which* rows survive depends on the order, so the sort must stay --
    this is exactly why the paper's benchmark query adds OFFSET 1.
    """
    if isinstance(plan, LogicalSort):
        return _drop_irrelevant_sort(plan.child)
    if isinstance(plan, LogicalProject):
        return replace(plan, child=_drop_irrelevant_sort(plan.child))
    return plan


# ---------------------------------------------------------------------- #
# Explain
# ---------------------------------------------------------------------- #


def explain(plan: LogicalPlan, indent: int = 0) -> str:
    """A compact textual plan tree (for tests and debugging)."""
    pad = "  " * indent
    if isinstance(plan, LogicalScan):
        return f"{pad}Scan({plan.table_name})"
    if isinstance(plan, LogicalProject):
        cols = ", ".join(plan.columns)
        return f"{pad}Project({cols})\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalFilter):
        parts = " AND ".join(
            f"{c.column} {c.op}"
            + ("" if c.op.startswith("is") else f" {c.literal!r}")
            for c in plan.condition.comparisons
        )
        return f"{pad}Filter({parts})\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalSort):
        if plan.mode == "full":
            label = f"Sort({plan.spec})"
        elif plan.mode == "refine":
            label = (
                f"Sort[refine: {plan.refine_prefix} {plan.reason}]"
                f"({plan.spec})"
            )
        else:
            label = f"Sort[{plan.mode}: {plan.reason}]({plan.spec})"
        return f"{pad}{label}\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalLimit):
        return (
            f"{pad}Limit(limit={plan.limit}, offset={plan.offset})\n"
            + explain(plan.child, indent + 1)
        )
    if isinstance(plan, LogicalAggregate):
        return f"{pad}Aggregate(count_star)\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalGroupBy):
        aggs = ", ".join(a.output_name for a in plan.aggregates)
        keys = ", ".join(plan.keys)
        presorted = ", presorted" if plan.presorted else ""
        return (
            f"{pad}GroupBy(keys=[{keys}], aggregates=[{aggs}]{presorted})\n"
            + explain(plan.child, indent + 1)
        )
    if isinstance(plan, LogicalJoin):
        pairs = ", ".join(
            f"{lk} = {rk}" for lk, rk in zip(plan.left_keys, plan.right_keys)
        )
        notes = "".join(
            f", {side} presorted"
            for side, flag in (
                ("left", plan.left_presorted),
                ("right", plan.right_presorted),
            )
            if flag
        )
        return (
            f"{pad}MergeJoin(on [{pairs}]{notes})\n"
            + explain(plan.left, indent + 1)
            + "\n"
            + explain(plan.right, indent + 1)
        )
    if isinstance(plan, LogicalTopN):
        return (
            f"{pad}TopN({plan.spec}, limit={plan.limit}, offset={plan.offset})\n"
            + explain(plan.child, indent + 1)
        )
    raise BindError(f"cannot explain {plan!r}")  # pragma: no cover
