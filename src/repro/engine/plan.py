"""Logical plans, binding, and the two optimizer rules that matter here.

The paper's benchmarking methodology (Section VII-A) hinges on optimizer
behaviour: a full sort is dropped when its order cannot affect the result
(aggregate over a sorted subquery), and ``ORDER BY ... LIMIT`` becomes a
specialized top-N operator.  We implement exactly those rules so the
paper's counter-measure -- adding ``OFFSET 1`` -- is observable in this
engine too.

Plan shape::

    Scan -> [Project] -> [Sort] -> [Limit] -> [Aggregate]

built from the AST by :func:`bind`, rewritten by :func:`optimize`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.aggregate.groupby import Aggregate
from repro.errors import BindError
from repro.engine.ast_nodes import (
    AggregateItem,
    CountStar,
    SelectStatement,
    StarSelection,
    SubqueryRef,
    TableRef,
)
from repro.types.datatypes import BIGINT, DOUBLE
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortSpec

__all__ = [
    "LogicalPlan",
    "LogicalScan",
    "LogicalProject",
    "LogicalFilter",
    "LogicalSort",
    "LogicalLimit",
    "LogicalAggregate",
    "LogicalGroupBy",
    "LogicalTopN",
    "bind",
    "optimize",
    "explain",
]


@dataclass(frozen=True)
class LogicalPlan:
    """Base class: every node knows its output schema."""

    schema: Schema


@dataclass(frozen=True)
class LogicalScan(LogicalPlan):
    table_name: str


@dataclass(frozen=True)
class LogicalProject(LogicalPlan):
    child: LogicalPlan
    columns: tuple[str, ...]


@dataclass(frozen=True)
class LogicalFilter(LogicalPlan):
    """WHERE: an AND-conjunction of simple comparisons (streaming)."""

    child: LogicalPlan
    condition: object  # engine.expressions.Conjunction


@dataclass(frozen=True)
class LogicalSort(LogicalPlan):
    child: LogicalPlan
    spec: SortSpec


@dataclass(frozen=True)
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: int | None
    offset: int


@dataclass(frozen=True)
class LogicalAggregate(LogicalPlan):
    """Global count(*) -- the benchmark queries' bracketing aggregate."""

    child: LogicalPlan


@dataclass(frozen=True)
class LogicalGroupBy(LogicalPlan):
    """Sort-based GROUP BY with aggregate expressions."""

    child: LogicalPlan
    keys: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]


@dataclass(frozen=True)
class LogicalTopN(LogicalPlan):
    """Fused Sort + Limit produced by the optimizer."""

    child: LogicalPlan
    spec: SortSpec
    limit: int
    offset: int


# ---------------------------------------------------------------------- #
# Binding
# ---------------------------------------------------------------------- #

CatalogLookup = Callable[[str], Schema]


def bind(statement: SelectStatement, catalog: CatalogLookup) -> LogicalPlan:
    """Resolve names and produce the canonical logical plan."""
    source = statement.source
    if isinstance(source, TableRef):
        schema = catalog(source.name)
        plan: LogicalPlan = LogicalScan(schema, source.name)
    elif isinstance(source, SubqueryRef):
        plan = bind(source.query, catalog)
    else:  # pragma: no cover - parser only produces the two above
        raise BindError(f"unsupported FROM item {source!r}")

    if statement.where is not None:
        statement.where.validate(plan.schema)
        plan = LogicalFilter(plan.schema, plan, statement.where)

    selection = statement.selection
    has_aggregate_items = isinstance(selection, tuple) and any(
        isinstance(item, AggregateItem) for item in selection
    )
    if statement.group_by or has_aggregate_items and not isinstance(
        selection, CountStar
    ):
        plan = _bind_group_by(statement, plan)
        selection = tuple(
            _select_item_name(item)
            for item in (
                statement.selection
                if isinstance(statement.selection, tuple)
                else (AggregateItem("count", None),)
            )
        )
    elif isinstance(selection, CountStar) and statement.group_by:
        plan = _bind_group_by(statement, plan)
        selection = ("count_star",)
    elif isinstance(selection, tuple):
        for name in selection:
            if name not in plan.schema:
                raise BindError(
                    f"column {name!r} not found in {list(plan.schema.names)}"
                )

    # ORDER BY binds against the columns below the projection (the
    # source, or the GROUP BY output), like real engines.
    if statement.has_order:
        spec = statement.sort_spec()
        for key in spec.keys:
            if key.column not in plan.schema:
                raise BindError(
                    f"ORDER BY column {key.column!r} not found in "
                    f"{list(plan.schema.names)}"
                )
        plan = LogicalSort(plan.schema, plan, spec)

    if statement.limit is not None or statement.offset is not None:
        plan = LogicalLimit(
            plan.schema, plan, statement.limit, statement.offset or 0
        )

    if isinstance(selection, tuple):
        projected = plan.schema.select(selection)
        plan = LogicalProject(projected, plan, tuple(selection))
    elif isinstance(selection, CountStar):
        count_schema = Schema((ColumnDef("count_star", BIGINT, False),))
        plan = LogicalAggregate(count_schema, plan)
    elif not isinstance(selection, StarSelection):  # pragma: no cover
        raise BindError(f"unsupported selection {selection!r}")
    return plan


def _select_item_name(item) -> str:
    if isinstance(item, AggregateItem):
        return Aggregate(item.function, item.column).output_name
    return item


def _aggregate_output_type(aggregate: Aggregate, child: LogicalPlan):
    if aggregate.name == "count":
        return BIGINT
    if aggregate.name in ("sum", "avg"):
        return DOUBLE
    # min/max of strings keeps the type; numerics widen to DOUBLE.
    dtype = child.schema.column(aggregate.column).dtype
    return dtype if dtype.is_variable_width else DOUBLE


def _bind_group_by(
    statement: SelectStatement, child: LogicalPlan
) -> LogicalPlan:
    """Validate and plan a GROUP BY + aggregates block."""
    selection = statement.selection
    items = (
        selection
        if isinstance(selection, tuple)
        else (AggregateItem("count", None),)
    )
    keys = statement.group_by
    if not keys:
        raise BindError(
            "aggregates other than a lone count(*) require GROUP BY"
        )
    for key in keys:
        if key not in child.schema:
            raise BindError(
                f"GROUP BY column {key!r} not found in "
                f"{list(child.schema.names)}"
            )
    aggregates: list[Aggregate] = []
    for item in items:
        if isinstance(item, AggregateItem):
            if item.column is not None and item.column not in child.schema:
                raise BindError(
                    f"aggregate column {item.column!r} not found in "
                    f"{list(child.schema.names)}"
                )
            aggregates.append(Aggregate(item.function, item.column))
        elif item not in keys:
            raise BindError(
                f"column {item!r} must appear in GROUP BY or inside an "
                "aggregate"
            )
    if not aggregates:
        # Pure grouping (SELECT k FROM t GROUP BY k): count(*) is
        # computed and projected away, giving DISTINCT semantics.
        aggregates.append(Aggregate("count", None))
    defs = [ColumnDef(k, child.schema.column(k).dtype) for k in keys]
    for aggregate in aggregates:
        nullable = aggregate.name != "count"
        defs.append(
            ColumnDef(
                aggregate.output_name,
                _aggregate_output_type(aggregate, child),
                nullable,
            )
        )
    return LogicalGroupBy(
        Schema(tuple(defs)), child, tuple(keys), tuple(aggregates)
    )


# ---------------------------------------------------------------------- #
# Optimizer
# ---------------------------------------------------------------------- #


def optimize(plan: LogicalPlan) -> LogicalPlan:
    """Apply the sort-elision and top-N rewrites bottom-up."""
    plan = _rewrite_children(plan)
    if isinstance(plan, LogicalAggregate):
        plan = replace(plan, child=_drop_irrelevant_sort(plan.child))
    if isinstance(plan, LogicalLimit) and isinstance(plan.child, LogicalSort):
        # ORDER BY ... LIMIT n [OFFSET m] -> top-N (paper, Section VII-A).
        if plan.limit is not None:
            sort = plan.child
            return LogicalTopN(
                plan.schema, sort.child, sort.spec, plan.limit, plan.offset
            )
    return plan


def _rewrite_children(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(
        plan,
        (
            LogicalProject,
            LogicalFilter,
            LogicalSort,
            LogicalLimit,
            LogicalAggregate,
            LogicalGroupBy,
        ),
    ):
        return replace(plan, child=optimize(plan.child))
    return plan


def _drop_irrelevant_sort(plan: LogicalPlan) -> LogicalPlan:
    """Remove a Sort whose order cannot affect a count(*) above it.

    Descends through projections.  Stops at Limit/Offset: with OFFSET 1
    *which* rows survive depends on the order, so the sort must stay --
    this is exactly why the paper's benchmark query adds OFFSET 1.
    """
    if isinstance(plan, LogicalSort):
        return _drop_irrelevant_sort(plan.child)
    if isinstance(plan, LogicalProject):
        return replace(plan, child=_drop_irrelevant_sort(plan.child))
    return plan


# ---------------------------------------------------------------------- #
# Explain
# ---------------------------------------------------------------------- #


def explain(plan: LogicalPlan, indent: int = 0) -> str:
    """A compact textual plan tree (for tests and debugging)."""
    pad = "  " * indent
    if isinstance(plan, LogicalScan):
        return f"{pad}Scan({plan.table_name})"
    if isinstance(plan, LogicalProject):
        cols = ", ".join(plan.columns)
        return f"{pad}Project({cols})\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalFilter):
        parts = " AND ".join(
            f"{c.column} {c.op}"
            + ("" if c.op.startswith("is") else f" {c.literal!r}")
            for c in plan.condition.comparisons
        )
        return f"{pad}Filter({parts})\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalSort):
        return f"{pad}Sort({plan.spec})\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalLimit):
        return (
            f"{pad}Limit(limit={plan.limit}, offset={plan.offset})\n"
            + explain(plan.child, indent + 1)
        )
    if isinstance(plan, LogicalAggregate):
        return f"{pad}Aggregate(count_star)\n" + explain(plan.child, indent + 1)
    if isinstance(plan, LogicalGroupBy):
        aggs = ", ".join(a.output_name for a in plan.aggregates)
        keys = ", ".join(plan.keys)
        return (
            f"{pad}GroupBy(keys=[{keys}], aggregates=[{aggs}])\n"
            + explain(plan.child, indent + 1)
        )
    if isinstance(plan, LogicalTopN):
        return (
            f"{pad}TopN({plan.spec}, limit={plan.limit}, offset={plan.offset})\n"
            + explain(plan.child, indent + 1)
        )
    raise BindError(f"cannot explain {plan!r}")  # pragma: no cover
