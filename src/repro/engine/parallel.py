"""Virtual-time parallelism: deterministic makespan modelling.

The paper's systems sort with k threads: morsel-driven run generation
followed by a parallel merge.  Python cannot run data-parallel threads
(GIL), and this reproduction targets a 1-CPU container anyway, so we model
parallel wall-clock deterministically: each unit of work is a task with a
known *cost* (simulated cycles or element counts), tasks are placed on
simulated threads, and the parallel runtime of a phase is its **makespan**.

Two placement policies:

* :func:`makespan` -- list scheduling in submission order (what a work
  queue of morsels does);
* a barrier-phased :class:`PhaseModel` for sort pipelines: run generation
  (one task per run), cascaded merge rounds (each round is a barrier), and
  Merge-Path-partitioned final merges, reproducing the degrading-then-
  repartitioned parallelism of Section VII / Figure 11.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SimulationError

__all__ = [
    "makespan",
    "PhaseModel",
    "merge_tree_makespan",
    "sort_phase_model",
]


def makespan(costs: Iterable[float], num_threads: int) -> float:
    """List-scheduling makespan of tasks on ``num_threads`` workers.

    Tasks are assigned in submission order to the earliest-free thread --
    a morsel work queue.  Returns the finish time of the last task.
    """
    if num_threads <= 0:
        raise SimulationError("num_threads must be positive")
    free_at = [0.0] * num_threads
    heapq.heapify(free_at)
    finish = 0.0
    for cost in costs:
        if cost < 0:
            raise SimulationError("task cost cannot be negative")
        start = heapq.heappop(free_at)
        end = start + cost
        finish = max(finish, end)
        heapq.heappush(free_at, end)
    return finish


def merge_tree_makespan(
    run_sizes: Sequence[float],
    num_threads: int,
    cost_per_element: float = 1.0,
    merge_path: bool = True,
) -> float:
    """Wall-clock of a cascaded 2-way merge tree over sorted runs.

    Each round pairs adjacent runs; a pair's merge costs
    ``(|a| + |b|) * cost_per_element``.  Without Merge Path a pair is one
    indivisible task, so the final rounds degrade to single-thread work
    (the paper: "parallelization degrades until a single thread merges the
    last two sorted runs").  With Merge Path each pair is split into
    ``num_threads`` equal partitions that schedule independently.
    """
    if num_threads <= 0:
        raise SimulationError("num_threads must be positive")
    sizes = [float(s) for s in run_sizes]
    total = 0.0
    while len(sizes) > 1:
        tasks: list[float] = []
        next_sizes: list[float] = []
        for i in range(0, len(sizes) - 1, 2):
            merged = sizes[i] + sizes[i + 1]
            cost = merged * cost_per_element
            if merge_path:
                share = cost / num_threads
                tasks.extend([share] * num_threads)
            else:
                tasks.append(cost)
            next_sizes.append(merged)
        if len(sizes) % 2 == 1:
            next_sizes.append(sizes[-1])
        total += makespan(tasks, num_threads)  # barrier per round
        sizes = next_sizes
    return total


def sort_phase_model(
    num_rows: int,
    num_workers: int,
    morsel_rows: int,
    cost_per_row: float = 1.0,
) -> "PhaseModel":
    """Predicted schedule of the *real* parallel sort executor.

    Mirrors, task for task, what
    :class:`repro.sort.parallel_exec.ParallelSortExecutor.argsort` will
    dispatch for ``num_rows`` keys: one ``run_gen`` task per morsel,
    then one ``merge_round_<r>`` phase per cascade round whose adjacent
    run pairs are each cut into ``ceil(num_workers / num_pairs)``
    Merge-Path partitions of ``ceil(pair_rows / partitions)`` rows
    (zero-size partitions are skipped; an odd leftover run passes
    through without a task).  Task costs are ``rows * cost_per_row``, so
    on an equal-cost workload the model's per-phase task multiset must
    equal the executor's measured ``SortStats.parallel_task_rows`` --
    the cross-check the tier-1 suite pins.

    The prediction is exact on task *placement shape* (phases, task
    counts, rows per task); wall-clock equivalence is not claimed --
    that is what the measured ``parallel_task_seconds`` are for.
    """
    if num_rows < 0:
        raise SimulationError("num_rows cannot be negative")
    if morsel_rows <= 0:
        raise SimulationError("morsel_rows must be positive")
    model = PhaseModel(num_threads=num_workers)
    runs = [
        min(start + morsel_rows, num_rows) - start
        for start in range(0, num_rows, morsel_rows)
    ]
    model.phase("run_gen", [rows * cost_per_row for rows in runs])
    round_index = 0
    while len(runs) > 1:
        pairs = [
            runs[i] + runs[i + 1] for i in range(0, len(runs) - 1, 2)
        ]
        partitions = max(1, -(-num_workers // len(pairs)))
        tasks: list[float] = []
        for total in pairs:
            step = -(-total // partitions)
            for p in range(partitions):
                size = min((p + 1) * step, total) - min(p * step, total)
                if size:
                    tasks.append(size * cost_per_row)
        model.phase(f"merge_round_{round_index}", tasks)
        if len(runs) % 2 == 1:
            pairs.append(runs[-1])
        runs = pairs
        round_index += 1
    return model


@dataclass
class PhaseModel:
    """Accumulates a pipeline of barrier-separated parallel phases.

    >>> model = PhaseModel(num_threads=8)
    >>> model.phase("run-generation", run_costs)
    >>> model.sequential("finalize", fixup_cost)
    >>> model.total
    """

    num_threads: int
    phases: list[tuple[str, float]] = field(default_factory=list)

    def phase(self, name: str, costs: Iterable[float]) -> float:
        """A parallel phase: tasks scheduled over the thread pool."""
        duration = makespan(costs, self.num_threads)
        self.phases.append((name, duration))
        return duration

    def sequential(self, name: str, cost: float) -> float:
        """A single-threaded phase."""
        if cost < 0:
            raise SimulationError("phase cost cannot be negative")
        self.phases.append((name, float(cost)))
        return float(cost)

    @property
    def total(self) -> float:
        return sum(duration for _, duration in self.phases)

    def report(self) -> str:
        lines = [
            f"{name:>20s}: {duration:14.0f}" for name, duration in self.phases
        ]
        lines.append(f"{'total':>20s}: {self.total:14.0f}")
        return "\n".join(lines)
