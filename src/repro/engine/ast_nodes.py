"""AST for the SQL subset the mini engine executes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.types.sortspec import NullOrder, Order, SortKey, SortSpec

__all__ = [
    "StarSelection",
    "CountStar",
    "AggregateItem",
    "OrderItem",
    "TableRef",
    "SubqueryRef",
    "JoinRef",
    "SelectStatement",
    "Selection",
    "FromItem",
]


@dataclass(frozen=True)
class StarSelection:
    """``SELECT *``"""


@dataclass(frozen=True)
class CountStar:
    """``SELECT count(*)``"""


@dataclass(frozen=True)
class AggregateItem:
    """An aggregate in the select list: ``sum(x)``, ``count(y)``, ...

    ``column`` is ``None`` for ``count(*)`` inside a GROUP BY query.
    """

    function: str
    column: str | None



@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry."""

    column: str
    order: Order = Order.ASCENDING
    null_order: NullOrder | None = None

    def to_sort_key(self) -> SortKey:
        return SortKey(self.column, self.order, self.null_order)


@dataclass(frozen=True)
class TableRef:
    """FROM <table>"""

    name: str


@dataclass(frozen=True)
class SubqueryRef:
    """FROM ( <select> ) [AS alias]"""

    query: "SelectStatement"
    alias: str | None = None


@dataclass(frozen=True)
class JoinRef:
    """FROM <left> JOIN <right> ON a = b [AND c = d ...]

    ``on`` holds the raw equality pairs as written; which side each
    column belongs to is resolved at bind time against the two schemas.
    """

    left: Union[TableRef, SubqueryRef]
    right: Union[TableRef, SubqueryRef]
    on: tuple[tuple[str, str], ...]


Selection = Union[StarSelection, CountStar, tuple]
FromItem = Union[TableRef, SubqueryRef, JoinRef]


@dataclass(frozen=True)
class SelectStatement:
    """One SELECT with optional GROUP BY / ORDER BY / LIMIT / OFFSET."""

    selection: Selection
    source: FromItem
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    group_by: tuple[str, ...] = ()
    where: object | None = None  # engine.expressions.Conjunction

    @property
    def has_order(self) -> bool:
        return bool(self.order_by)

    def sort_spec(self) -> SortSpec:
        return SortSpec(tuple(item.to_sort_key() for item in self.order_by))
