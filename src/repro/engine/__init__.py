"""The mini vectorized SQL engine and the virtual-time parallel model."""

from repro.engine.ast_nodes import (
    CountStar,
    OrderItem,
    SelectStatement,
    StarSelection,
    SubqueryRef,
    TableRef,
)
from repro.engine.database import Database
from repro.engine.parallel import PhaseModel, makespan, merge_tree_makespan
from repro.engine.parser import parse, tokenize
from repro.engine.plan import (
    LogicalAggregate,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopN,
    bind,
    explain,
    optimize,
)

__all__ = [
    "CountStar",
    "OrderItem",
    "SelectStatement",
    "StarSelection",
    "SubqueryRef",
    "TableRef",
    "Database",
    "PhaseModel",
    "makespan",
    "merge_tree_makespan",
    "parse",
    "tokenize",
    "LogicalAggregate",
    "LogicalLimit",
    "LogicalPlan",
    "LogicalProject",
    "LogicalScan",
    "LogicalSort",
    "LogicalTopN",
    "bind",
    "explain",
    "optimize",
]
