"""The mini database: catalog + parse/bind/optimize/execute.

A deliberately small vectorized-interpreted engine around the sort
operator, sufficient to run the paper's end-to-end benchmark queries::

    db = Database()
    db.register("t", table)
    db.execute("SELECT count(*) FROM (SELECT a FROM t ORDER BY b OFFSET 1) q")
"""

from __future__ import annotations

from repro.errors import BindError, EngineError
from repro.engine import plan as planmod
from repro.engine.operators import (
    CountAggregateOperator,
    FilterOperator,
    GroupByOperator,
    LimitOperator,
    MergeJoinOperator,
    PhysicalOperator,
    ProjectOperator,
    ScanOperator,
    SortExecOperator,
    TopNExecOperator,
    collect,
)
from repro.engine.parser import parse
from repro.sort.operator import SortConfig
from repro.table.table import Table
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec

__all__ = ["Database"]


class Database:
    """An in-process catalog of tables plus a query executor.

    Every registered table carries a monotone version number, bumped on
    each (re-)``register`` -- the invalidation signal result caches key
    on: a cached result is valid exactly while every table it read still
    has the version it was computed against.
    """

    def __init__(self, sort_config: SortConfig | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self._versions: dict[str, int] = {}
        self._orderings: dict[str, SortSpec] = {}
        self.sort_config = sort_config or SortConfig()

    # -- catalog ---------------------------------------------------------- #

    def register(self, name: str, table: Table) -> None:
        """Register (or replace) a named table, bumping its version.

        Replacing a table drops any declared ordering: the new contents
        make no sortedness promise until :meth:`declare_ordering` is
        called again (a maintained-view publisher re-declares after
        every snapshot).
        """
        if not name or not name.isidentifier():
            raise EngineError(f"invalid table name {name!r}")
        self._tables[name] = table
        self._versions[name] = self._versions.get(name, 0) + 1
        self._orderings.pop(name, None)

    def declare_ordering(self, name: str, spec: SortSpec | str) -> None:
        """Promise that table ``name`` is exactly sorted by ``spec``.

        The optimizer's order-propagation pass consults this catalog to
        elide, subsume, or downgrade sorts over scans of the table.
        ``spec`` may be a :class:`SortSpec` or ORDER BY text like
        ``"a, b DESC"``.  The declaration is the caller's promise --
        typically a maintained incremental view whose snapshots come
        out of :meth:`repro.sort.incremental.IncrementalSorter.view` --
        and is dropped automatically when the table is re-registered.
        """
        if isinstance(spec, str):
            spec = SortSpec.of(*(part.strip() for part in spec.split(",")))
        schema = self.table(name).schema
        for key in spec.keys:
            schema.column(key.column)  # raises on unknown columns
        self._orderings[name] = spec

    def table_ordering(self, name: str) -> SortSpec | None:
        """The declared ordering of ``name``, or None if unordered."""
        return self._orderings.get(name)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise BindError(
                f"unknown table {name!r} (have {sorted(self._tables)})"
            ) from None

    def table_version(self, name: str) -> int:
        """The table's write version (1 on first register)."""
        self.table(name)  # raises BindError on unknown tables
        return self._versions[name]

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def _schema_of(self, name: str) -> Schema:
        return self.table(name).schema

    # -- planning ---------------------------------------------------------- #

    def plan(
        self,
        sql: str,
        optimize: bool = True,
        propagate_order: bool = True,
    ) -> planmod.LogicalPlan:
        """Parse and bind ``sql``; optionally run the optimizer rewrites.

        ``propagate_order=False`` plans without the order-propagation
        pass (every sort stays a full sort) -- the oracle configuration
        the differential tests and benchmarks compare against.
        """
        logical = planmod.bind(parse(sql), self._schema_of)
        if optimize:
            logical = planmod.optimize(
                logical,
                self.table_ordering if propagate_order else None,
                propagate_order,
            )
        return logical

    def explain(
        self,
        sql: str,
        optimize: bool = True,
        propagate_order: bool = True,
    ) -> str:
        """The textual plan the query would execute."""
        return planmod.explain(self.plan(sql, optimize, propagate_order))

    def _physical(
        self,
        logical: planmod.LogicalPlan,
        sort_config: SortConfig | None = None,
        sinks: list[PhysicalOperator] | None = None,
    ) -> PhysicalOperator:
        config = sort_config or self.sort_config

        def child() -> PhysicalOperator:
            return self._physical(logical.child, sort_config, sinks)

        if isinstance(logical, planmod.LogicalScan):
            return ScanOperator(self.table(logical.table_name))
        if isinstance(logical, planmod.LogicalProject):
            return ProjectOperator(child(), logical.columns)
        if isinstance(logical, planmod.LogicalFilter):
            return FilterOperator(child(), logical.condition)
        if isinstance(logical, planmod.LogicalSort):
            operator = SortExecOperator(
                child(),
                logical.spec,
                config,
                mode=logical.mode,
                refine_prefix=logical.refine_prefix,
            )
            if sinks is not None:
                sinks.append(operator)
            return operator
        if isinstance(logical, planmod.LogicalLimit):
            return LimitOperator(child(), logical.limit, logical.offset)
        if isinstance(logical, planmod.LogicalAggregate):
            return CountAggregateOperator(child())
        if isinstance(logical, planmod.LogicalGroupBy):
            operator = GroupByOperator(
                child(),
                logical.schema,
                logical.keys,
                logical.aggregates,
                config,
                presorted=logical.presorted,
            )
            if sinks is not None:
                sinks.append(operator)
            return operator
        if isinstance(logical, planmod.LogicalJoin):
            operator = MergeJoinOperator(
                logical.schema,
                self._physical(logical.left, sort_config, sinks),
                self._physical(logical.right, sort_config, sinks),
                logical.left_keys,
                logical.right_keys,
                config,
                left_presorted=logical.left_presorted,
                right_presorted=logical.right_presorted,
            )
            if sinks is not None:
                sinks.append(operator)
            return operator
        if isinstance(logical, planmod.LogicalTopN):
            return TopNExecOperator(
                child(),
                logical.spec,
                logical.limit,
                logical.offset,
                config,
            )
        raise EngineError(f"no physical operator for {logical!r}")

    def referenced_tables(self, logical: planmod.LogicalPlan) -> tuple[str, ...]:
        """Names of the base tables a bound plan scans, sorted."""
        names: set[str] = set()
        stack = [logical]
        while stack:
            node = stack.pop()
            if isinstance(node, planmod.LogicalScan):
                names.add(node.table_name)
            for attr in ("child", "left", "right"):
                node_child = getattr(node, attr, None)
                if node_child is not None:
                    stack.append(node_child)
        return tuple(sorted(names))

    # -- execution ---------------------------------------------------------- #

    def execute(
        self,
        sql: str,
        optimize: bool = True,
        sort_config: SortConfig | None = None,
        propagate_order: bool = True,
    ) -> Table:
        """Run a query and return the full result table.

        ``sort_config`` overrides the database-wide config for this one
        query -- the hook a query service uses to attach its per-query
        cancellation event and memory grant without mutating shared
        state.  ``propagate_order=False`` forces every sort to run in
        full (the differential oracle).
        """
        return collect(
            self._physical(
                self.plan(sql, optimize, propagate_order), sort_config
            )
        )

    def execute_bound(
        self,
        logical: planmod.LogicalPlan,
        sort_config: SortConfig | None = None,
    ) -> tuple[Table, list]:
        """Execute an already-bound plan, returning (result, sort stats).

        The stats list holds one ``SortStats`` per sort-bearing pipeline
        breaker (full/elided/refined sorts, merge joins, presorted
        group-bys), in plan order; Top-N and streaming operators
        contribute none.  The service layer plans once (for the cache
        key's table set), then executes here under its per-query
        config.
        """
        sinks: list[PhysicalOperator] = []
        root = self._physical(logical, sort_config, sinks)
        result = collect(root)
        return result, [
            operator.last_stats
            for operator in sinks
            if operator.last_stats is not None
        ]

    def execute_detailed(
        self,
        sql: str,
        optimize: bool = True,
        sort_config: SortConfig | None = None,
        propagate_order: bool = True,
    ) -> tuple[Table, list]:
        """Run a query, also returning the sort operators' ``SortStats``.

        Convenience wrapper over :meth:`plan` + :meth:`execute_bound`,
        used to surface governor-forced spills and degradation counters
        per query.
        """
        return self.execute_bound(
            self.plan(sql, optimize, propagate_order), sort_config
        )
