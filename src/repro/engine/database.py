"""The mini database: catalog + parse/bind/optimize/execute.

A deliberately small vectorized-interpreted engine around the sort
operator, sufficient to run the paper's end-to-end benchmark queries::

    db = Database()
    db.register("t", table)
    db.execute("SELECT count(*) FROM (SELECT a FROM t ORDER BY b OFFSET 1) q")
"""

from __future__ import annotations

from repro.errors import BindError, EngineError
from repro.engine import plan as planmod
from repro.engine.operators import (
    CountAggregateOperator,
    FilterOperator,
    GroupByOperator,
    LimitOperator,
    PhysicalOperator,
    ProjectOperator,
    ScanOperator,
    SortExecOperator,
    TopNExecOperator,
    collect,
)
from repro.engine.parser import parse
from repro.sort.operator import SortConfig
from repro.table.table import Table
from repro.types.schema import Schema

__all__ = ["Database"]


class Database:
    """An in-process catalog of tables plus a query executor."""

    def __init__(self, sort_config: SortConfig | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self.sort_config = sort_config or SortConfig()

    # -- catalog ---------------------------------------------------------- #

    def register(self, name: str, table: Table) -> None:
        """Register (or replace) a named table."""
        if not name or not name.isidentifier():
            raise EngineError(f"invalid table name {name!r}")
        self._tables[name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise BindError(
                f"unknown table {name!r} (have {sorted(self._tables)})"
            ) from None

    def _schema_of(self, name: str) -> Schema:
        return self.table(name).schema

    # -- planning ---------------------------------------------------------- #

    def plan(self, sql: str, optimize: bool = True) -> planmod.LogicalPlan:
        """Parse and bind ``sql``; optionally run the optimizer rewrites."""
        logical = planmod.bind(parse(sql), self._schema_of)
        if optimize:
            logical = planmod.optimize(logical)
        return logical

    def explain(self, sql: str, optimize: bool = True) -> str:
        """The textual plan the query would execute."""
        return planmod.explain(self.plan(sql, optimize))

    def _physical(self, logical: planmod.LogicalPlan) -> PhysicalOperator:
        if isinstance(logical, planmod.LogicalScan):
            return ScanOperator(self.table(logical.table_name))
        if isinstance(logical, planmod.LogicalProject):
            return ProjectOperator(
                self._physical(logical.child), logical.columns
            )
        if isinstance(logical, planmod.LogicalFilter):
            return FilterOperator(
                self._physical(logical.child), logical.condition
            )
        if isinstance(logical, planmod.LogicalSort):
            return SortExecOperator(
                self._physical(logical.child), logical.spec, self.sort_config
            )
        if isinstance(logical, planmod.LogicalLimit):
            return LimitOperator(
                self._physical(logical.child), logical.limit, logical.offset
            )
        if isinstance(logical, planmod.LogicalAggregate):
            return CountAggregateOperator(self._physical(logical.child))
        if isinstance(logical, planmod.LogicalGroupBy):
            return GroupByOperator(
                self._physical(logical.child),
                logical.schema,
                logical.keys,
                logical.aggregates,
                self.sort_config,
            )
        if isinstance(logical, planmod.LogicalTopN):
            return TopNExecOperator(
                self._physical(logical.child),
                logical.spec,
                logical.limit,
                logical.offset,
            )
        raise EngineError(f"no physical operator for {logical!r}")

    # -- execution ---------------------------------------------------------- #

    def execute(self, sql: str, optimize: bool = True) -> Table:
        """Run a query and return the full result table."""
        return collect(self._physical(self.plan(sql, optimize)))
