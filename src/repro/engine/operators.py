"""Physical vector-at-a-time operators.

Pull-based execution: each operator is an iterator of
:class:`~repro.table.chunk.DataChunk` batches, which is the vectorized
interpreted model of the paper (interpretation overhead amortized per
vector, not per tuple).  Sort and TopN are the pipeline breakers: they
drain their child before producing anything, exactly as Section V
describes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import EngineError
from repro.sort.operator import SortConfig, SortOperator
from repro.sort.topn import TopNOperator
from repro.table.chunk import VECTOR_SIZE, DataChunk, chunk_table
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import BIGINT
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortSpec

__all__ = [
    "PhysicalOperator",
    "ScanOperator",
    "ProjectOperator",
    "FilterOperator",
    "SortExecOperator",
    "TopNExecOperator",
    "LimitOperator",
    "CountAggregateOperator",
    "GroupByOperator",
    "MergeJoinOperator",
    "collect",
]


class PhysicalOperator:
    """Base: a schema plus a chunk iterator."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema

    def chunks(self) -> Iterator[DataChunk]:
        raise NotImplementedError


def collect(operator: PhysicalOperator) -> Table:
    """Drain an operator into one table (the client's result set)."""
    result: Table | None = None
    for chunk in operator.chunks():
        table = chunk.to_table()
        result = table if result is None else result.concat(table)
    if result is None:
        return Table.empty(operator.schema)
    return result


class ScanOperator(PhysicalOperator):
    """Reads a base table in vector batches."""

    def __init__(self, table: Table, vector_size: int = VECTOR_SIZE) -> None:
        super().__init__(table.schema)
        self.table = table
        self.vector_size = vector_size

    def chunks(self) -> Iterator[DataChunk]:
        if self.table.num_rows == 0:
            return
        yield from chunk_table(self.table, self.vector_size)


class ProjectOperator(PhysicalOperator):
    """Column projection (pure column selection; streaming)."""

    def __init__(self, child: PhysicalOperator, columns: tuple[str, ...]) -> None:
        super().__init__(child.schema.select(columns))
        self.child = child
        self.columns = columns

    def chunks(self) -> Iterator[DataChunk]:
        for chunk in self.child.chunks():
            vectors = [chunk.vector(name) for name in self.columns]
            yield DataChunk(self.schema, vectors)


class FilterOperator(PhysicalOperator):
    """Streaming WHERE: vectorized mask + gather per chunk."""

    def __init__(self, child: PhysicalOperator, condition) -> None:
        super().__init__(child.schema)
        self.child = child
        self.condition = condition

    def chunks(self) -> Iterator[DataChunk]:
        from repro.engine.expressions import filter_chunk

        for chunk in self.child.chunks():
            filtered = filter_chunk(chunk, self.condition)
            if len(filtered):
                yield filtered


class SortExecOperator(PhysicalOperator):
    """The full-sort pipeline breaker wrapping the paper's sort operator.

    With ``SortConfig.external`` set, ORDER BY runs through the spilling
    :class:`repro.sort.external.ExternalSortOperator` instead -- same
    config object carries the spill knobs (failover directories, retry
    policy, checksum verification), so the fault-tolerance ladder is
    reachable end-to-end from ``Database(sort_config=...)``.

    ``SortConfig.num_workers > 1`` routes either operator's run
    generation (and the in-memory cascade merges) through the
    multi-core executor of :mod:`repro.sort.parallel_exec`; the
    measured parallel schedule lands in ``last_stats`` next to the
    usual counters.

    The optimizer's order-propagation pass downgrades the operator via
    ``mode``:

    * ``"elided"`` / ``"subsumed"``: the input already arrives in (at
      least) the requested order -- stream the child through untouched
      and record only a ``sorts_elided`` / ``sorts_subsumed`` counter.
    * ``"refine"``: the input is exactly sorted by ``refine_prefix``, a
      leading prefix of ``spec`` -- run the vectorized tie-group
      refinement (:func:`repro.sort.refine.refine_sorted`) and fall
      back to the full sort (counting ``refine_fallbacks``) when that
      pass declines.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        spec: SortSpec,
        config: SortConfig | None = None,
        mode: str = "full",
        refine_prefix: SortSpec | None = None,
    ) -> None:
        super().__init__(child.schema)
        self.child = child
        self.spec = spec
        self.config = config or SortConfig()
        self.mode = mode
        self.refine_prefix = refine_prefix
        self.last_stats = None

    def chunks(self) -> Iterator[DataChunk]:
        from repro.sort.operator import SortStats

        if self.mode in ("elided", "subsumed"):
            stats = SortStats()
            if self.mode == "elided":
                stats.sorts_elided += 1
            else:
                stats.sorts_subsumed += 1
            self.last_stats = stats
            yield from self.child.chunks()
            return
        if self.mode == "refine" and self.refine_prefix is not None:
            from repro.sort.refine import refine_sorted

            source = collect(self.child)
            stats = SortStats()
            refined = refine_sorted(
                source, self.spec, self.refine_prefix, self.config, stats
            )
            if refined is not None:
                self.last_stats = stats
                yield from chunk_table(refined, self.config.vector_size)
                return
            # The refinement pass declined; run the full sort operator.
            sorter = SortOperator(self.schema, self.spec, self.config)
            for chunk in chunk_table(source, self.config.vector_size):
                sorter.sink(chunk)
            result = sorter.finalize()
            sorter.stats.refine_fallbacks += 1
            self.last_stats = sorter.stats
            yield from chunk_table(result, self.config.vector_size)
            return
        if self.config.external:
            from repro.sort.external import ExternalSortOperator

            with ExternalSortOperator(
                self.schema, self.spec, self.config
            ) as sorter:
                for chunk in self.child.chunks():
                    sorter.sink(chunk)
                result = sorter.finalize()
                self.last_stats = sorter.stats
        else:
            sorter = SortOperator(self.schema, self.spec, self.config)
            for chunk in self.child.chunks():
                sorter.sink(chunk)
            result = sorter.finalize()
            self.last_stats = sorter.stats
        yield from chunk_table(result, self.config.vector_size)


class TopNExecOperator(PhysicalOperator):
    """ORDER BY + LIMIT fused into the bounded-heap top-N operator.

    The config carries the cooperative cancellation event (checked per
    sunk chunk), so a service can abort a long Top-N scan mid-stream
    just like a full sort.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        spec: SortSpec,
        limit: int,
        offset: int = 0,
        config: SortConfig | None = None,
    ) -> None:
        super().__init__(child.schema)
        self.child = child
        self.spec = spec
        self.limit = limit
        self.offset = offset
        self.config = config or SortConfig()

    def chunks(self) -> Iterator[DataChunk]:
        top = TopNOperator(
            self.schema, self.spec, self.limit, self.offset, self.config
        )
        for chunk in self.child.chunks():
            top.sink(chunk)
        result = top.finalize()
        yield from chunk_table(result)


class LimitOperator(PhysicalOperator):
    """Streaming LIMIT/OFFSET over ordered input."""

    def __init__(
        self,
        child: PhysicalOperator,
        limit: int | None,
        offset: int = 0,
    ) -> None:
        super().__init__(child.schema)
        if limit is not None and limit < 0:
            raise EngineError("LIMIT must be non-negative")
        if offset < 0:
            raise EngineError("OFFSET must be non-negative")
        self.child = child
        self.limit = limit
        self.offset = offset

    def chunks(self) -> Iterator[DataChunk]:
        to_skip = self.offset
        remaining = self.limit  # None = unbounded
        for chunk in self.child.chunks():
            table = chunk.to_table()
            if to_skip:
                if to_skip >= table.num_rows:
                    to_skip -= table.num_rows
                    continue
                table = table.slice(to_skip, table.num_rows)
                to_skip = 0
            if remaining is not None:
                if remaining == 0:
                    return
                if table.num_rows > remaining:
                    table = table.slice(0, remaining)
                remaining -= table.num_rows
            if table.num_rows:
                yield DataChunk.from_table(table)


class GroupByOperator(PhysicalOperator):
    """Sort-based GROUP BY: a pipeline breaker like the sort itself.

    ``presorted`` is the optimizer's order-propagation promise that the
    input already arrives sorted by the grouping keys; the internal
    sort is skipped (``last_stats.sorts_elided``) and aggregation runs
    straight off the group boundaries.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        schema: Schema,
        keys: tuple[str, ...],
        aggregates: tuple,
        config: SortConfig | None = None,
        presorted: bool = False,
    ) -> None:
        super().__init__(schema)
        self.child = child
        self.keys = keys
        self.aggregates = aggregates
        self.config = config or SortConfig()
        self.presorted = presorted
        self.last_stats = None

    def chunks(self) -> Iterator[DataChunk]:
        from repro.aggregate.groupby import group_by
        from repro.sort.operator import SortStats

        source = collect(self.child)
        if self.presorted:
            stats = SortStats()
            stats.sorts_elided += 1
            self.last_stats = stats
        result = group_by(
            source,
            self.keys,
            self.aggregates,
            self.config,
            presorted=self.presorted,
        )
        yield from chunk_table(result)


class MergeJoinOperator(PhysicalOperator):
    """Sort-merge inner join: drains both children, merges sorted runs.

    Order-propagation sets ``left_presorted`` / ``right_presorted`` when
    that input already arrives sorted by its join keys; the join then
    skips that side's sort and ``last_stats`` records the elision.
    """

    def __init__(
        self,
        schema: Schema,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[str, ...],
        right_keys: tuple[str, ...],
        config: SortConfig | None = None,
        left_presorted: bool = False,
        right_presorted: bool = False,
    ) -> None:
        super().__init__(schema)
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.config = config or SortConfig()
        self.left_presorted = left_presorted
        self.right_presorted = right_presorted
        self.last_stats = None

    def chunks(self) -> Iterator[DataChunk]:
        from repro.join.merge_join import merge_join
        from repro.sort.operator import SortStats

        stats = SortStats()
        result = merge_join(
            collect(self.left),
            collect(self.right),
            self.left_keys,
            self.right_keys,
            config=self.config,
            left_presorted=self.left_presorted,
            right_presorted=self.right_presorted,
            stats=stats,
        )
        self.last_stats = stats
        yield from chunk_table(result)


class CountAggregateOperator(PhysicalOperator):
    """count(*): drains the child, emits one row.

    The paper's benchmark query reads the whole sorted subquery through
    this operator, forcing lazily-materializing sorts to do all their
    work, while the one-row result keeps serialization negligible.
    """

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__(Schema((ColumnDef("count_star", BIGINT, False),)))
        self.child = child

    def chunks(self) -> Iterator[DataChunk]:
        count = 0
        for chunk in self.child.chunks():
            count += len(chunk)
        data = ColumnVector(BIGINT, np.array([count], dtype=np.int64))
        yield DataChunk(self.schema, [data])
